"""Minimum satisfying assignments (MSA) for Presburger formulas.

The paper (Definitions 4–6) relies on the companion CAV 2012 algorithm
"Minimum Satisfying Assignments for SMT" to find, for a formula ``phi``
and a per-variable cost map ``Pi``, a *partial* assignment ``sigma`` of
minimum cost such that ``sigma(phi)`` is valid (true for every value of
the unassigned variables), and such that ``sigma`` is *consistent* with a
set of side formulas (each ``psi``: ``SAT(F_sigma and psi)``).

The theory here admits quantifier elimination, which gives an exact
characterization: a variable set ``V`` supports an MSA iff

    feasible(V)  :=  QE(forall V'. phi)  and  the conjunction of
    project(psi, V) over the side formulas psi

is satisfiable (``V'`` the complement, ``project`` existential
projection) — any model of ``feasible(V)`` is a valid, consistent partial
assignment over ``V``.

Two complete strategies are provided:

* ``subsets``  — enumerate variable sets in increasing cost via a priority
  queue and return the first feasible one (simple, obviously correct);
* ``branch_bound`` — the include/exclude search tree of the CAV'12
  algorithm with cost-based pruning and an infeasibility prune
  (``forall E. phi`` unsatisfiable over the remaining variables kills the
  whole subtree).

Both are cross-checked against each other in the test suite and exposed
for the ablation benchmark (experiment A4 in DESIGN.md).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .. import obs
from .. import limits as _limits
from ..logic.formulas import Formula, conj, eq
from ..obs import provenance as prov
from ..logic.terms import LinTerm, Var
from ..qe import eliminate_forall, project
from ..smt import SmtSolver

CostMap = Mapping[Var, int]


@dataclass(frozen=True)
class MsaResult:
    """A minimum satisfying assignment."""

    assignment: tuple[tuple[Var, int], ...]
    cost: int

    @property
    def variables(self) -> frozenset[Var]:
        return frozenset(v for v, _ in self.assignment)

    def as_dict(self) -> dict[Var, int]:
        return dict(self.assignment)

    def as_formula(self) -> Formula:
        """F_sigma: the conjunction of equalities the assignment denotes."""
        return conj(*(eq(LinTerm.var(v), c) for v, c in self.assignment))


class MsaSolver:
    """Finds minimum satisfying assignments by QE-backed subset search."""

    def __init__(self, solver: SmtSolver | None = None):
        self._solver = solver or SmtSolver()
        self._feasible_cache: dict[frozenset[Var], dict | None] = {}
        self._viable_cache: dict[frozenset[Var], bool] = {}

    # ------------------------------------------------------------------
    def find(
        self,
        phi: Formula,
        costs: CostMap | Callable[[Var], int],
        consistency: Sequence[Formula] = (),
        *,
        strategy: str = "branch_bound",
        restrict: Sequence[Var] | None = None,
    ) -> MsaResult | None:
        """Return an MSA of ``phi``, or ``None`` if none exists.

        ``costs`` maps each free variable of ``phi`` to a non-negative
        integer cost (Definition 4).  ``consistency`` lists side formulas
        each of which the assignment must be individually consistent with
        (Definition 6; the paper passes the invariants ``I`` and learned
        witnesses ``W``).  ``restrict`` limits the search to a subset of
        the free variables — callers use it when they can prove the
        remaining variables cannot occur in any optimal assignment.
        """
        self._feasible_cache: dict[frozenset[Var], dict | None] = {}
        self._viable_cache: dict[frozenset[Var], bool] = {}
        if restrict is not None:
            allowed = set(restrict) & phi.free_vars()
            variables = sorted(allowed, key=lambda v: v.name)
        else:
            variables = sorted(phi.free_vars(), key=lambda v: v.name)
        cost_of = costs if callable(costs) else (
            lambda v, _m=dict(costs): _m[v]
        )
        cost_map = {v: cost_of(v) for v in variables}
        for v, c in cost_map.items():
            if c < 0:
                raise ValueError(f"negative cost for {v}")

        with obs.span("msa.find", strategy=strategy,
                      variables=len(variables)):
            if strategy == "subsets":
                found = self._search_subsets(phi, variables, cost_map,
                                             list(consistency))
            elif strategy == "branch_bound":
                found = self._search_branch_bound(phi, variables, cost_map,
                                                  list(consistency))
            else:
                raise ValueError(f"unknown MSA strategy {strategy!r}")
        return found

    # ------------------------------------------------------------------
    def _feasible(
        self,
        phi: Formula,
        include: Sequence[Var],
        exclude: Sequence[Var],
        consistency: Sequence[Formula],
        cost: int | None = None,
    ) -> dict[Var, int] | None:
        """A consistent assignment over ``include`` making phi valid.

        ``exclude`` must be the complement of ``include`` in the search
        variables; any free variables of ``phi`` outside the search set
        are always universally quantified as well.  ``cost`` is the
        candidate's total cost, carried along for provenance only.
        """
        key = frozenset(include)
        cached = key in self._feasible_cache
        if cached:
            obs.inc("msa.feasible.hit")
            answer = self._feasible_cache[key]
        else:
            obs.inc("msa.candidates")
            quantified = [v for v in phi.free_vars() if v not in key]
            residual = eliminate_forall(quantified, phi)
            constraints = [residual]
            keep = set(include)
            for psi in consistency:
                constraints.append(project(psi, keep))
            result = self._solver.check(conj(*constraints))
            answer = (
                None if not result.sat
                else {v: result.model.value(v) for v in include}
            )
            self._feasible_cache[key] = answer
        if prov.is_enabled():
            node: dict = {
                "variables": sorted(v.name for v in include),
                "cost": cost,
                "status": "kept" if answer is not None else "infeasible",
            }
            if answer:
                node["assignment"] = {
                    v.name: c for v, c in sorted(
                        answer.items(), key=lambda item: item[0].name)
                }
            if cached:
                node["cached"] = True
            prov.record("msa.node", **node)
        return answer

    def _subtree_viable(
        self, phi: Formula, exclude: Sequence[Var]
    ) -> bool:
        """Can *any* assignment of the remaining vars work once ``exclude``
        is universally quantified?  (Sound prune: excluding more variables
        only strengthens the requirement.)"""
        key = frozenset(exclude)
        cached = self._viable_cache.get(key)
        if cached is not None:
            if not cached and prov.is_enabled():
                prov.record("msa.prune",
                            variables=sorted(v.name for v in exclude),
                            cached=True)
            return cached
        residual = eliminate_forall(list(exclude), phi)
        answer = self._solver.is_sat(residual)
        self._viable_cache[key] = answer
        if not answer:
            obs.inc("msa.subtree_prunes")
            if prov.is_enabled():
                prov.record("msa.prune",
                            variables=sorted(v.name for v in exclude))
        return answer

    # ------------------------------------------------------------------
    def _search_subsets(
        self,
        phi: Formula,
        variables: list[Var],
        cost_map: dict[Var, int],
        consistency: list[Formula],
    ) -> MsaResult | None:
        """Enumerate variable subsets in increasing total cost."""
        order = sorted(variables, key=lambda v: (cost_map[v], v.name))
        n = len(order)
        # heap of (cost, subset-bitmask); push successors lazily
        heap: list[tuple[int, int]] = [(0, 0)]
        seen: set[int] = {0}
        while heap:
            _limits.tick("msa")
            cost, mask = heapq.heappop(heap)
            include = [order[i] for i in range(n) if mask >> i & 1]
            exclude = [order[i] for i in range(n) if not mask >> i & 1]
            assignment = self._feasible(phi, include, exclude, consistency,
                                        cost=cost)
            if assignment is not None:
                return MsaResult(
                    tuple(sorted(assignment.items(),
                                 key=lambda item: item[0].name)),
                    cost,
                )
            for i in range(n):
                if mask >> i & 1:
                    continue
                successor = mask | 1 << i
                if successor not in seen:
                    seen.add(successor)
                    heapq.heappush(
                        heap, (cost + cost_map[order[i]], successor)
                    )
        return None

    # ------------------------------------------------------------------
    def _search_branch_bound(
        self,
        phi: Formula,
        variables: list[Var],
        cost_map: dict[Var, int],
        consistency: list[Formula],
    ) -> MsaResult | None:
        """Include/exclude decision tree with cost pruning."""
        # decide expensive variables first: their exclusion prunes most
        order = sorted(
            variables, key=lambda v: (-cost_map[v], v.name)
        )
        best: list[MsaResult | None] = [None]

        def record(include: list[Var]) -> None:
            exclude = [v for v in variables if v not in include]
            cost = sum(cost_map[v] for v in include)
            assignment = self._feasible(phi, include, exclude, consistency,
                                        cost=cost)
            if assignment is None:
                return
            if best[0] is None or cost < best[0].cost:
                best[0] = MsaResult(
                    tuple(sorted(assignment.items(),
                                 key=lambda item: item[0].name)),
                    cost,
                )

        def descend(index: int, include: list[Var],
                    exclude: list[Var], cost: int) -> None:
            _limits.tick("msa")
            if best[0] is not None and cost >= best[0].cost:
                return
            if index == len(order):
                record(include)
                return
            if exclude and not self._subtree_viable(phi, exclude):
                return
            v = order[index]
            # try excluding first (cheaper result if it works)
            descend(index + 1, include, exclude + [v], cost)
            descend(index + 1, include + [v], exclude, cost + cost_map[v])

        descend(0, [], [], 0)
        return best[0]


_DEFAULT = MsaSolver()


def find_msa(
    phi: Formula,
    costs: CostMap | Callable[[Var], int],
    consistency: Sequence[Formula] = (),
    *,
    strategy: str = "branch_bound",
) -> MsaResult | None:
    """Find an MSA with the shared default solver."""
    return _DEFAULT.find(phi, costs, consistency, strategy=strategy)
