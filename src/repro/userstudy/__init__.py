"""Simulated user study regenerating Figure 7 (see DESIGN.md for the
human-participant substitution rationale)."""

from .participants import (
    Participant,
    answer_query,
    classify_manually,
    query_difficulty,
)
from .stats import (
    TTestResult,
    accuracy_ttest,
    format_figure7,
    summarize,
    time_ttest,
    welch_ttest,
)
from .study import (
    DiagnosisTree,
    ProblemCell,
    SessionOutcome,
    StudyResult,
    UserStudy,
    run_user_study,
)

__all__ = [
    "Participant", "answer_query", "classify_manually", "query_difficulty",
    "TTestResult", "accuracy_ttest", "format_figure7", "summarize",
    "time_ttest", "welch_ttest",
    "DiagnosisTree", "ProblemCell", "SessionOutcome", "StudyResult",
    "UserStudy", "run_user_study",
]
