"""Statistics and rendering for the user study (Figure 7 + t-tests)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

try:
    from scipy import stats as scipy_stats
except ImportError:  # no scipy/numpy: use the pure-Python t-test below
    scipy_stats = None

from .study import StudyResult


@dataclass(frozen=True)
class TTestResult:
    statistic: float
    p_value: float
    n_left: int
    n_right: int


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta (Lentz)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-15:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_bt = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
             + a * math.log(x) + b * math.log1p(-x))
    bt = math.exp(ln_bt)
    if x < (a + 1.0) / (a + b + 2.0):
        return bt * _betacf(a, b, x) / a
    return 1.0 - bt * _betacf(b, a, 1.0 - x) / b


def _student_t_two_sided(t: float, df: float) -> float:
    """P(|T| >= |t|) for Student's t with ``df`` degrees of freedom."""
    return _betainc(df / 2.0, 0.5, df / (df + t * t))


def _welch_py(left: Sequence[float],
              right: Sequence[float]) -> tuple[float, float]:
    n1, n2 = len(left), len(right)
    m1, m2 = sum(left) / n1, sum(right) / n2
    v1 = sum((v - m1) ** 2 for v in left) / (n1 - 1)
    v2 = sum((v - m2) ** 2 for v in right) / (n2 - 1)
    se2 = v1 / n1 + v2 / n2
    if se2 == 0.0:
        return (0.0, 1.0) if m1 == m2 else (math.inf, 0.0)
    t = (m1 - m2) / math.sqrt(se2)
    df = se2 * se2 / ((v1 / n1) ** 2 / (n1 - 1)
                      + (v2 / n2) ** 2 / (n2 - 1))
    return t, _student_t_two_sided(t, df)


def welch_ttest(left: Sequence[float],
                right: Sequence[float]) -> TTestResult:
    """Two-tailed Welch t-test (unequal variances), as in the paper.

    Uses scipy when available; otherwise an equivalent pure-Python
    implementation (same statistic, p-value via the incomplete-beta
    continued fraction, accurate to ~1e-14) keeps the user study
    runnable in scipy-free environments.
    """
    if scipy_stats is not None:
        result = scipy_stats.ttest_ind(left, right, equal_var=False)
        statistic, p_value = float(result.statistic), float(result.pvalue)
    else:
        statistic, p_value = _welch_py(left, right)
    return TTestResult(
        statistic=statistic,
        p_value=p_value,
        n_left=len(left),
        n_right=len(right),
    )


def accuracy_ttest(study: StudyResult) -> TTestResult:
    """Manual vs technique per-participant accuracy."""
    return welch_ttest(
        study.per_participant_accuracy("manual"),
        study.per_participant_accuracy("technique"),
    )


def time_ttest(study: StudyResult) -> TTestResult:
    """Manual vs technique classification times."""
    return welch_ttest(study.times("manual"), study.times("technique"))


def format_figure7(study: StudyResult) -> str:
    """Render the study as the paper's Figure 7 table."""
    header = (
        f"{'':12s} {'LOC':>4s} {'Kind':>10s} {'Class.':>12s} | "
        f"{'%corr':>6s} {'%wrong':>7s} {'%?':>6s} {'time':>7s} | "
        f"{'%corr':>6s} {'%wrong':>7s} {'%?':>6s} {'time':>7s}"
    )
    bar = "-" * len(header)
    lines = [
        f"{'':34s}{'':12s}  Manual classification      |"
        f"        New technique",
        header,
        bar,
    ]
    for bench in study.benchmarks:
        manual = study.cell(bench.problem_id, "manual")
        guided = study.cell(bench.problem_id, "technique")
        lines.append(
            f"Problem {bench.problem_id:<4d} {bench.paper_loc:>4d} "
            f"{bench.kind:>10s} {bench.classification:>12s} | "
            f"{manual.pct_correct:5.1f}% {manual.pct_wrong:6.1f}% "
            f"{manual.pct_unknown:5.1f}% {manual.avg_seconds:5.0f} s | "
            f"{guided.pct_correct:5.1f}% {guided.pct_wrong:6.1f}% "
            f"{guided.pct_unknown:5.1f}% {guided.avg_seconds:5.0f} s"
        )
    manual_avg = study.average_cell("manual")
    guided_avg = study.average_cell("technique")
    lines.append(bar)
    lines.append(
        f"{'Average':12s} {'':4s} {'':10s} {'':12s} | "
        f"{manual_avg.pct_correct:5.1f}% {manual_avg.pct_wrong:6.1f}% "
        f"{manual_avg.pct_unknown:5.1f}% {manual_avg.avg_seconds:5.0f} s | "
        f"{guided_avg.pct_correct:5.1f}% {guided_avg.pct_wrong:6.1f}% "
        f"{guided_avg.pct_unknown:5.1f}% {guided_avg.avg_seconds:5.0f} s"
    )

    acc = accuracy_ttest(study)
    tim = time_ttest(study)
    lines.append("")
    lines.append(
        f"participants: {len(study.participants)} valid "
        f"({study.excluded} excluded by the diagnostic problems)"
    )
    lines.append(
        f"accuracy t-test (Welch, two-tailed): p = {acc.p_value:.3g}"
    )
    lines.append(
        f"time t-test     (Welch, two-tailed): p = {tim.p_value:.3g}"
    )
    return "\n".join(lines)


def summarize(study: StudyResult) -> dict:
    """Aggregate numbers for programmatic comparison with the paper."""
    manual = study.average_cell("manual")
    guided = study.average_cell("technique")
    return {
        "participants": len(study.participants),
        "excluded": study.excluded,
        "manual": {
            "pct_correct": manual.pct_correct,
            "pct_wrong": manual.pct_wrong,
            "pct_unknown": manual.pct_unknown,
            "avg_seconds": manual.avg_seconds,
        },
        "technique": {
            "pct_correct": guided.pct_correct,
            "pct_wrong": guided.pct_wrong,
            "pct_unknown": guided.pct_unknown,
            "avg_seconds": guided.avg_seconds,
        },
        "accuracy_p_value": accuracy_ttest(study).p_value,
        "time_p_value": time_ttest(study).p_value,
    }
