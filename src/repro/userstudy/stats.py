"""Statistics and rendering for the user study (Figure 7 + t-tests)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

from .study import StudyResult


@dataclass(frozen=True)
class TTestResult:
    statistic: float
    p_value: float
    n_left: int
    n_right: int


def welch_ttest(left: Sequence[float],
                right: Sequence[float]) -> TTestResult:
    """Two-tailed Welch t-test (unequal variances), as in the paper."""
    result = scipy_stats.ttest_ind(left, right, equal_var=False)
    return TTestResult(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        n_left=len(left),
        n_right=len(right),
    )


def accuracy_ttest(study: StudyResult) -> TTestResult:
    """Manual vs technique per-participant accuracy."""
    return welch_ttest(
        study.per_participant_accuracy("manual"),
        study.per_participant_accuracy("technique"),
    )


def time_ttest(study: StudyResult) -> TTestResult:
    """Manual vs technique classification times."""
    return welch_ttest(study.times("manual"), study.times("technique"))


def format_figure7(study: StudyResult) -> str:
    """Render the study as the paper's Figure 7 table."""
    header = (
        f"{'':12s} {'LOC':>4s} {'Kind':>10s} {'Class.':>12s} | "
        f"{'%corr':>6s} {'%wrong':>7s} {'%?':>6s} {'time':>7s} | "
        f"{'%corr':>6s} {'%wrong':>7s} {'%?':>6s} {'time':>7s}"
    )
    bar = "-" * len(header)
    lines = [
        f"{'':34s}{'':12s}  Manual classification      |"
        f"        New technique",
        header,
        bar,
    ]
    for bench in study.benchmarks:
        manual = study.cell(bench.problem_id, "manual")
        guided = study.cell(bench.problem_id, "technique")
        lines.append(
            f"Problem {bench.problem_id:<4d} {bench.paper_loc:>4d} "
            f"{bench.kind:>10s} {bench.classification:>12s} | "
            f"{manual.pct_correct:5.1f}% {manual.pct_wrong:6.1f}% "
            f"{manual.pct_unknown:5.1f}% {manual.avg_seconds:5.0f} s | "
            f"{guided.pct_correct:5.1f}% {guided.pct_wrong:6.1f}% "
            f"{guided.pct_unknown:5.1f}% {guided.avg_seconds:5.0f} s"
        )
    manual_avg = study.average_cell("manual")
    guided_avg = study.average_cell("technique")
    lines.append(bar)
    lines.append(
        f"{'Average':12s} {'':4s} {'':10s} {'':12s} | "
        f"{manual_avg.pct_correct:5.1f}% {manual_avg.pct_wrong:6.1f}% "
        f"{manual_avg.pct_unknown:5.1f}% {manual_avg.avg_seconds:5.0f} s | "
        f"{guided_avg.pct_correct:5.1f}% {guided_avg.pct_wrong:6.1f}% "
        f"{guided_avg.pct_unknown:5.1f}% {guided_avg.avg_seconds:5.0f} s"
    )

    acc = accuracy_ttest(study)
    tim = time_ttest(study)
    lines.append("")
    lines.append(
        f"participants: {len(study.participants)} valid "
        f"({study.excluded} excluded by the diagnostic problems)"
    )
    lines.append(
        f"accuracy t-test (Welch, two-tailed): p = {acc.p_value:.3g}"
    )
    lines.append(
        f"time t-test     (Welch, two-tailed): p = {tim.p_value:.3g}"
    )
    return "\n".join(lines)


def summarize(study: StudyResult) -> dict:
    """Aggregate numbers for programmatic comparison with the paper."""
    manual = study.average_cell("manual")
    guided = study.average_cell("technique")
    return {
        "participants": len(study.participants),
        "excluded": study.excluded,
        "manual": {
            "pct_correct": manual.pct_correct,
            "pct_wrong": manual.pct_wrong,
            "pct_unknown": manual.pct_unknown,
            "avg_seconds": manual.avg_seconds,
        },
        "technique": {
            "pct_correct": guided.pct_correct,
            "pct_wrong": guided.pct_wrong,
            "pct_unknown": guided.pct_unknown,
            "avg_seconds": guided.avg_seconds,
        },
        "accuracy_p_value": accuracy_ttest(study).p_value,
        "time_p_value": time_ttest(study).p_value,
    }
