"""Behavioral model of user-study participants.

The paper recruited 56 professional programmers (49 after screening) and
had each classify error reports either manually or with the query-guided
technique.  Humans cannot be recruited offline, so the reproduction
replaces them with a stochastic participant model (documented as a
substitution in DESIGN.md) and drives the *real* diagnosis engine with
the simulated answers:

* Each participant has a ``skill`` drawn from a Beta distribution.
* **Manual classification** is modeled directly on the paper's findings:
  accuracy near (even below) chance, driven down by program length and
  the subtlety of the imprecision cause, with a substantial
  "I don't know" rate and ~5-minute decision times.
* **Query answering** is modeled per atomic query: local, single-fact
  questions are answered correctly with high probability; error rates
  grow with the number of facts a query mentions and shrink with skill.
  Answer times are tens of seconds per query.

The constants were calibrated once against Figure 7's aggregate shape
(manual: ~33%/51%/16% at ~293 s; technique: ~90%/7%/2% at ~55 s) and are
kept in one place so the sensitivity is easy to inspect.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..diagnosis import Answer, Query
from ..suite import Benchmark

# ---------------------------------------------------------------------------
# calibration constants
# ---------------------------------------------------------------------------

#: manual classification: base probability of a correct call at skill 0.5
MANUAL_BASE_CORRECT = 0.44
#: how much skill sways manual accuracy
MANUAL_SKILL_GAIN = 0.22
#: accuracy penalty per 100 LOC of program length
MANUAL_LOC_PENALTY = 0.045
#: probability of giving up ("I don't know") on manual classification
MANUAL_GIVEUP = 0.16
#: mean and spread of manual classification time (seconds)
MANUAL_TIME_MEAN = 240.0
MANUAL_TIME_SPREAD = 0.40
MANUAL_TIME_PER_LOC = 0.28

#: per-query: probability of a correct answer at skill 0.5 for a
#: single-fact query
QUERY_BASE_CORRECT = 0.93
#: accuracy penalty per additional variable mentioned by the query
QUERY_VAR_PENALTY = 0.035
#: probability of "I don't know" per query
QUERY_GIVEUP = 0.02
#: per-query time model (seconds)
QUERY_TIME_BASE = 16.0
QUERY_TIME_PER_VAR = 10.0
QUERY_TIME_SPREAD = 0.50
#: fixed overhead of reading the report and the tool output
SESSION_OVERHEAD = 20.0


@dataclass(frozen=True)
class Participant:
    """One simulated professional programmer."""

    ident: int
    skill: float      # in [0, 1]

    @staticmethod
    def sample(ident: int, rng: random.Random) -> "Participant":
        # Beta(5, 3): competent on average, with spread
        return Participant(ident, rng.betavariate(5, 3))


def _lognormal(rng: random.Random, mean: float, spread: float) -> float:
    """A lognormal sample with the given (approximate) mean."""
    mu = math.log(mean) - spread * spread / 2
    return math.exp(rng.gauss(mu, spread))


# ---------------------------------------------------------------------------
# manual condition
# ---------------------------------------------------------------------------

def classify_manually(
    participant: Participant,
    bench: Benchmark,
    rng: random.Random,
) -> tuple[str, float]:
    """Classify a report by reading the program (no tool assistance).

    Returns ``(answer, seconds)`` with answer one of ``'false alarm'``,
    ``'real bug'``, ``'unknown'``.
    """
    loc = bench.paper_loc
    p_correct = (
        MANUAL_BASE_CORRECT
        + MANUAL_SKILL_GAIN * (participant.skill - 0.5)
        - MANUAL_LOC_PENALTY * (loc / 100.0)
    )
    p_correct = min(max(p_correct, 0.05), 0.9)
    p_giveup = MANUAL_GIVEUP

    seconds = _lognormal(
        rng,
        MANUAL_TIME_MEAN + MANUAL_TIME_PER_LOC * loc,
        MANUAL_TIME_SPREAD,
    )

    roll = rng.random()
    if roll < p_giveup:
        return "unknown", seconds
    if rng.random() < p_correct:
        return bench.classification, seconds
    wrong = ("real bug" if bench.classification == "false alarm"
             else "false alarm")
    return wrong, seconds


# ---------------------------------------------------------------------------
# guided condition
# ---------------------------------------------------------------------------

def query_difficulty(query: Query) -> int:
    """Number of distinct facts (variables) the query asks about."""
    return max(1, len(query.formula.free_vars()))


def answer_query(
    participant: Participant,
    query: Query,
    truth: Answer,
    rng: random.Random,
) -> tuple[Answer, float]:
    """Answer one atomic query; returns ``(answer, seconds)``.

    ``truth`` is the ground-truth answer (what a perfectly careful
    programmer would say).
    """
    nvars = query_difficulty(query)
    p_correct = (
        QUERY_BASE_CORRECT
        + 0.04 * (participant.skill - 0.5)
        - QUERY_VAR_PENALTY * (nvars - 1)
    )
    p_correct = min(max(p_correct, 0.5), 0.995)

    seconds = _lognormal(
        rng,
        QUERY_TIME_BASE + QUERY_TIME_PER_VAR * (nvars - 1),
        QUERY_TIME_SPREAD,
    )

    roll = rng.random()
    if roll < QUERY_GIVEUP:
        return Answer.UNKNOWN, seconds
    if rng.random() < p_correct:
        return truth, seconds
    flipped = Answer.NO if truth is Answer.YES else Answer.YES
    return flipped, seconds
