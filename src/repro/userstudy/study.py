"""The simulated user study (Section 6 / Figure 7).

Protocol, mirroring the paper:

* 56 participants are "recruited"; each answers the three diagnostic
  screening problems, and participants who miss any are excluded
  (the paper ended with 49 valid participants);
* for every one of the 11 benchmark problems, each participant is
  randomly assigned to classify it either manually or with the
  query-guided technique, so each problem gets ~half the participants
  per condition;
* the guided condition drives the *real* Figure 6 engine: the
  participant model answers each query the engine actually asks (with
  ground truth from the exhaustive oracle and a skill-dependent error
  model), and the participant's classification is the engine's verdict.

Because the engine is deterministic given the answer sequence, the
interaction is memoized as a lazily-built decision tree per problem —
participants who answer identically share one engine run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..analysis import AnalysisResult
from ..diagnosis import (
    Answer,
    DiagnosisResult,
    EngineConfig,
    ExhaustiveOracle,
    Oracle,
    Query,
    diagnose_error,
)
from ..suite import BENCHMARKS, DIAGNOSTICS, Benchmark
from .participants import (
    SESSION_OVERHEAD,
    Participant,
    answer_query,
    classify_manually,
)


class _NeedAnswer(Exception):
    """Internal control flow: the engine asked a query we have no answer
    for yet; carries the query so the caller can obtain one."""

    def __init__(self, query: Query):
        self.query = query


class _ReplayOracle(Oracle):
    """Feeds a fixed answer prefix to the engine, then aborts."""

    def __init__(self, answers: Sequence[Answer]):
        self._answers = list(answers)
        self._index = 0

    def answer(self, query: Query) -> Answer:
        if self._index < len(self._answers):
            result = self._answers[self._index]
            self._index += 1
            return result
        raise _NeedAnswer(query)


@dataclass
class DiagnosisTree:
    """Memoized interaction tree for one benchmark problem.

    ``resolve(answers)`` returns either ``("ask", query)`` — the next
    query the engine poses after the given answer prefix — or
    ``("done", result)``.
    """

    analysis: AnalysisResult
    config: EngineConfig = field(default_factory=EngineConfig)
    _cache: dict[tuple[Answer, ...], tuple[str, object]] = field(
        default_factory=dict
    )

    def resolve(self, answers: tuple[Answer, ...]) -> tuple[str, object]:
        if answers in self._cache:
            return self._cache[answers]
        try:
            result = diagnose_error(
                self.analysis, _ReplayOracle(answers), self.config
            )
        except _NeedAnswer as need:
            outcome: tuple[str, object] = ("ask", need.query)
        else:
            outcome = ("done", result)
        self._cache[answers] = outcome
        return outcome


@dataclass
class SessionOutcome:
    """One participant classifying one problem under one condition."""

    participant: int
    problem_id: int
    condition: str            # 'manual' | 'technique'
    answer: str               # 'false alarm' | 'real bug' | 'unknown'
    correct: bool
    seconds: float
    queries_answered: int = 0


@dataclass
class ProblemCell:
    """One condition's aggregate for one problem (half a Figure 7 row)."""

    pct_correct: float
    pct_wrong: float
    pct_unknown: float
    avg_seconds: float
    count: int


@dataclass
class StudyResult:
    """Everything the Figure 7 table and the t-tests need."""

    sessions: list[SessionOutcome]
    participants: list[Participant]
    excluded: int
    benchmarks: tuple[Benchmark, ...]

    def cell(self, problem_id: int, condition: str) -> ProblemCell:
        rows = [
            s for s in self.sessions
            if s.problem_id == problem_id and s.condition == condition
        ]
        n = len(rows)
        if n == 0:
            return ProblemCell(0.0, 0.0, 0.0, 0.0, 0)
        correct = sum(1 for s in rows if s.correct)
        unknown = sum(1 for s in rows if s.answer == "unknown")
        wrong = n - correct - unknown
        return ProblemCell(
            pct_correct=100.0 * correct / n,
            pct_wrong=100.0 * wrong / n,
            pct_unknown=100.0 * unknown / n,
            avg_seconds=sum(s.seconds for s in rows) / n,
            count=n,
        )

    def average_cell(self, condition: str) -> ProblemCell:
        cells = [
            self.cell(b.problem_id, condition) for b in self.benchmarks
        ]
        n = len(cells)
        return ProblemCell(
            pct_correct=sum(c.pct_correct for c in cells) / n,
            pct_wrong=sum(c.pct_wrong for c in cells) / n,
            pct_unknown=sum(c.pct_unknown for c in cells) / n,
            avg_seconds=sum(c.avg_seconds for c in cells) / n,
            count=sum(c.count for c in cells),
        )

    def per_participant_accuracy(self, condition: str) -> list[float]:
        """Per-participant fraction correct (for the t-tests)."""
        by_participant: dict[int, list[bool]] = {}
        for s in self.sessions:
            if s.condition == condition:
                by_participant.setdefault(s.participant, []).append(
                    s.correct
                )
        return [
            sum(flags) / len(flags)
            for flags in by_participant.values()
            if flags
        ]

    def times(self, condition: str) -> list[float]:
        return [
            s.seconds for s in self.sessions if s.condition == condition
        ]


class UserStudy:
    """Runs the full simulated study."""

    def __init__(
        self,
        *,
        num_recruited: int = 56,
        seed: int = 2012,
        benchmarks: tuple[Benchmark, ...] = BENCHMARKS,
        engine_config: EngineConfig | None = None,
        jobs: int | None = 1,
    ):
        self._num_recruited = num_recruited
        self._seed = seed
        self._benchmarks = benchmarks
        self._config = engine_config or EngineConfig()
        # worker processes for the up-front analysis of all benchmarks;
        # None = CPU count, 1 = load serially in-process
        self._jobs = jobs

    # ------------------------------------------------------------------
    def run(self) -> StudyResult:
        rng = random.Random(self._seed)
        recruited = [
            Participant.sample(i, rng) for i in range(self._num_recruited)
        ]
        valid = [p for p in recruited if self._passes_screening(p, rng)]
        excluded = len(recruited) - len(valid)

        sessions: list[SessionOutcome] = []
        from ..batch import load_many

        loaded = load_many(self._benchmarks, jobs=self._jobs)
        for bench, program, analysis in loaded:
            truth = ExhaustiveOracle(
                program, analysis, radius=bench.oracle_radius
            )
            tree = DiagnosisTree(analysis, self._config)
            for participant in valid:
                condition = rng.choice(["manual", "technique"])
                if condition == "manual":
                    sessions.append(
                        self._manual_session(participant, bench, rng)
                    )
                else:
                    sessions.append(
                        self._guided_session(
                            participant, bench, tree, truth, rng
                        )
                    )
        return StudyResult(
            sessions=sessions,
            participants=valid,
            excluded=excluded,
            benchmarks=self._benchmarks,
        )

    # ------------------------------------------------------------------
    def _passes_screening(self, participant: Participant,
                          rng: random.Random) -> bool:
        """The three diagnostic problems: trivial, so errors are rare and
        concentrated among low-skill participants (as intended by the
        paper's screening)."""
        for _bench in DIAGNOSTICS:
            p_correct = min(0.995, 0.9 + 0.15 * participant.skill)
            if rng.random() > p_correct:
                return False
        return True

    def _manual_session(self, participant: Participant, bench: Benchmark,
                        rng: random.Random) -> SessionOutcome:
        answer, seconds = classify_manually(participant, bench, rng)
        return SessionOutcome(
            participant=participant.ident,
            problem_id=bench.problem_id,
            condition="manual",
            answer=answer,
            correct=answer == bench.classification,
            seconds=seconds,
        )

    def _guided_session(
        self,
        participant: Participant,
        bench: Benchmark,
        tree: DiagnosisTree,
        truth: Oracle,
        rng: random.Random,
    ) -> SessionOutcome:
        answers: tuple[Answer, ...] = ()
        seconds = SESSION_OVERHEAD * (1.2 - 0.4 * participant.skill)
        queries = 0
        while True:
            kind, payload = tree.resolve(answers)
            if kind == "done":
                result = payload
                assert isinstance(result, DiagnosisResult)
                answer = result.classification
                return SessionOutcome(
                    participant=participant.ident,
                    problem_id=bench.problem_id,
                    condition="technique",
                    answer=answer,
                    correct=answer == bench.classification,
                    seconds=seconds,
                    queries_answered=queries,
                )
            query = payload
            assert isinstance(query, Query)
            true_answer = truth.answer(query)
            response, t = answer_query(participant, query, true_answer, rng)
            seconds += t
            queries += 1
            answers = answers + (response,)


def run_user_study(*, num_recruited: int = 56, seed: int = 2012,
                   benchmarks: tuple[Benchmark, ...] = BENCHMARKS,
                   engine_config: EngineConfig | None = None,
                   jobs: int | None = 1) -> StudyResult:
    """Convenience wrapper: run the full simulated study.

    The signature is explicit (no ``**kwargs`` passthrough) so a typo
    like ``n_recruited=...`` raises ``TypeError`` instead of being
    silently ignored.
    """
    return UserStudy(
        num_recruited=num_recruited,
        seed=seed,
        benchmarks=benchmarks,
        engine_config=engine_config,
        jobs=jobs,
    ).run()
