"""Lightweight tracing and metrics for the diagnosis pipeline.

Usage, from anywhere in the package::

    from .. import obs

    obs.inc("qe.elim.miss")
    with obs.span("msa.find", strategy="branch_bound"):
        ...

All probes are no-ops until :func:`enable` is called (or the
``REPRO_OBS`` environment variable is set), and the disabled fast path
costs one global check per probe — see ``benchmarks/bench_overhead.py``
for the enforced bound.  :func:`snapshot` returns the aggregate
counters/gauges/span stats; :func:`export_jsonl` dumps the bounded
event buffer for offline analysis; :func:`merge_snapshots` combines
per-worker snapshots from the batch driver into one fleet-wide view.
"""

from .core import (
    NULL_SPAN,
    capture,
    disable,
    enable,
    event_count,
    events,
    export_jsonl,
    gauge,
    hit_rate,
    inc,
    is_enabled,
    merge_snapshots,
    reset,
    snapshot,
    span,
    stubbed,
)

__all__ = [
    "NULL_SPAN",
    "capture",
    "disable",
    "enable",
    "event_count",
    "events",
    "export_jsonl",
    "gauge",
    "hit_rate",
    "inc",
    "is_enabled",
    "merge_snapshots",
    "reset",
    "snapshot",
    "span",
    "stubbed",
]
