"""Lightweight tracing and metrics for the diagnosis pipeline.

Usage, from anywhere in the package::

    from .. import obs

    obs.inc("qe.elim.miss")
    obs.observe("qe.blowup", after / before)
    with obs.span("msa.find", strategy="branch_bound"):
        ...

All probes are no-ops until :func:`enable` is called (or the
``REPRO_OBS`` environment variable is set), and the disabled fast path
costs one global check per probe — see ``benchmarks/bench_overhead.py``
for the enforced bound.  :func:`snapshot` returns the aggregate
counters/gauges/span stats/histograms; :func:`export_jsonl` dumps the
bounded event buffer for offline analysis; :func:`export_chrome` and
:func:`export_prometheus` render the same data for Perfetto and
Prometheus scrapers; :func:`merge_snapshots` combines per-worker
snapshots from the batch driver into one fleet-wide view.

The sibling modules layer on top: :mod:`.context` carries the
per-request :class:`~repro.obs.context.TraceContext` that correlates
spans, logs and provenance across threads and processes;
:mod:`.logging` emits the structured ``repro.log/1`` stream with that
context auto-attached; :mod:`.provenance` records the derivation DAG
behind each verdict (keyed to span ids); and :mod:`.history` appends
per-run snapshots to ``BENCH_obs.json`` and flags stage-latency
regressions.
"""

from .context import (
    TraceContext,
    bind,
    current,
    current_trace_id,
    from_traceparent,
    new_trace,
)
from .core import (
    NULL_SPAN,
    capture,
    current_span_id,
    disable,
    enable,
    event_count,
    events,
    export_chrome,
    export_jsonl,
    export_prometheus,
    gauge,
    hit_rate,
    inc,
    is_enabled,
    merge_snapshots,
    observe,
    percentile,
    reset,
    set_span_hook,
    snapshot,
    span,
    span_sequence,
    stubbed,
)

__all__ = [
    "NULL_SPAN",
    "TraceContext",
    "bind",
    "capture",
    "current",
    "current_span_id",
    "current_trace_id",
    "disable",
    "enable",
    "event_count",
    "events",
    "export_chrome",
    "export_jsonl",
    "export_prometheus",
    "from_traceparent",
    "gauge",
    "hit_rate",
    "inc",
    "is_enabled",
    "merge_snapshots",
    "new_trace",
    "observe",
    "percentile",
    "reset",
    "set_span_hook",
    "snapshot",
    "span",
    "span_sequence",
    "stubbed",
]
