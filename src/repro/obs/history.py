"""Run-history store: per-run telemetry snapshots with regression flags.

The ROADMAP's north star (production scale, hardware speed) needs a
*trajectory*, not a point: a perf regression is invisible unless today's
run can be compared against yesterday's.  This module appends one entry
per instrumented run to a JSON file (``BENCH_obs.json`` by convention,
schema ``repro.history/1``) and flags stage-level latency regressions
against the stored baseline.

Each run entry carries:

* ``timestamp`` / ``label`` / ``meta`` — identification (meta is free
  form: accuracy, wall seconds, git rev, ...);
* ``stages`` — per-span-name latency summary (count, total_s, mean_s,
  p95_s) distilled from the snapshot's span aggregates and duration
  histograms (the core layer feeds every span's duration into a
  histogram of the span's name, so p95 is available per stage);
* ``counters`` — the snapshot's counters (cache hit rates etc.).

Regression checking compares the *current* snapshot's per-stage p95
against the latest stored run: a stage regresses when its p95 exceeds
the baseline's by more than ``threshold`` (default 20%).  Stages below
``min_seconds`` total time are ignored — microsecond-level stages are
all scheduler noise — as are stages with fewer than ``min_count``
samples on either side.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

HISTORY_SCHEMA = "repro.history/1"
DEFAULT_PATH = "BENCH_obs.json"

#: Default regression gate: p95 more than 20% above the baseline.
DEFAULT_THRESHOLD = 0.20

#: Stages cheaper than this (total seconds in the run) are never
#: flagged; their percentiles are dominated by timer noise.
MIN_TOTAL_SECONDS = 0.05
MIN_COUNT = 5


def load(path: str | os.PathLike = DEFAULT_PATH) -> dict:
    """Read a history file; a missing or empty file is an empty history."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read().strip()
    except FileNotFoundError:
        return {"schema": HISTORY_SCHEMA, "runs": []}
    if not text:
        return {"schema": HISTORY_SCHEMA, "runs": []}
    data = json.loads(text)
    schema = data.get("schema")
    if schema != HISTORY_SCHEMA:
        raise ValueError(f"unsupported history schema {schema!r} "
                         f"(expected {HISTORY_SCHEMA})")
    data.setdefault("runs", [])
    return data


def stage_summary(snapshot: dict | None) -> dict[str, dict]:
    """Distill a telemetry snapshot into per-stage latency summaries."""
    if not snapshot:
        return {}
    spans = snapshot.get("spans", {})
    hists = snapshot.get("hists", {})
    stages: dict[str, dict] = {}
    for name, s in spans.items():
        entry = {
            "count": s["count"],
            "total_s": s["total_s"],
            "mean_s": s["total_s"] / max(1, s["count"]),
            "max_s": s["max_s"],
        }
        hist = hists.get(name)
        if hist is not None:
            entry["p50_s"] = hist.get("p50", 0.0)
            entry["p95_s"] = hist.get("p95", 0.0)
            entry["p99_s"] = hist.get("p99", 0.0)
        stages[name] = entry
    return stages


def run_entry(snapshot: dict | None, *, label: str | None = None,
              meta: dict[str, Any] | None = None,
              timestamp: float | None = None) -> dict:
    """Build one history entry from a telemetry snapshot."""
    return {
        "timestamp": time.time() if timestamp is None else timestamp,
        "label": label,
        "meta": meta or {},
        "stages": stage_summary(snapshot),
        "counters": dict((snapshot or {}).get("counters", {})),
    }


def append_run(path: str | os.PathLike, snapshot: dict | None, *,
               label: str | None = None,
               meta: dict[str, Any] | None = None,
               timestamp: float | None = None,
               max_runs: int = 200) -> dict:
    """Append a run entry to the history file; returns the entry.

    The file keeps at most ``max_runs`` entries (oldest evicted), so the
    trajectory grows without the file growing unboundedly.
    """
    history = load(path)
    entry = run_entry(snapshot, label=label, meta=meta,
                      timestamp=timestamp)
    history["runs"].append(entry)
    if len(history["runs"]) > max_runs:
        history["runs"] = history["runs"][-max_runs:]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2, default=str)
        handle.write("\n")
    return entry


def baseline_run(history: dict) -> dict | None:
    """The baseline the next run is compared against: the latest stored
    run (None for an empty history)."""
    runs = history.get("runs", [])
    return runs[-1] if runs else None


def check_regressions(history_or_path: dict | str | os.PathLike,
                      snapshot: dict | None, *,
                      threshold: float = DEFAULT_THRESHOLD,
                      min_total_s: float = MIN_TOTAL_SECONDS,
                      min_count: int = MIN_COUNT) -> list[dict]:
    """Stage-level p95 latency regressions of ``snapshot`` vs baseline.

    Returns one dict per regressed stage: ``{"stage", "baseline_p95_s",
    "current_p95_s", "ratio"}`` (ratio is current/baseline).  An empty
    history, or a stage missing from either side, never flags.
    """
    history = (load(history_or_path)
               if isinstance(history_or_path, (str, os.PathLike))
               else history_or_path)
    base = baseline_run(history)
    if base is None:
        return []
    current = stage_summary(snapshot)
    regressions: list[dict] = []
    for stage, entry in sorted(current.items()):
        prior = base.get("stages", {}).get(stage)
        if prior is None:
            continue
        base_p95 = prior.get("p95_s")
        cur_p95 = entry.get("p95_s")
        if not base_p95 or not cur_p95:
            continue
        if (entry["total_s"] < min_total_s
                or prior["total_s"] < min_total_s):
            continue
        if entry["count"] < min_count or prior["count"] < min_count:
            continue
        if cur_p95 > base_p95 * (1.0 + threshold):
            regressions.append({
                "stage": stage,
                "baseline_p95_s": base_p95,
                "current_p95_s": cur_p95,
                "ratio": cur_p95 / base_p95,
            })
    return regressions


def format_history(history: dict, *, last: int = 10) -> str:
    """Render the most recent runs as an aligned trajectory table."""
    runs = history.get("runs", [])[-last:]
    if not runs:
        return "history: (empty)"
    lines = [f"history ({len(history.get('runs', []))} run(s), "
             f"showing last {len(runs)}):"]
    lines.append(f"  {'when':19s} {'label':20s} {'wall_s':>8s} "
                 f"{'accuracy':>8s} {'stages':>6s}")
    for run in runs:
        when = time.strftime("%Y-%m-%d %H:%M:%S",
                             time.localtime(run.get("timestamp", 0)))
        meta = run.get("meta", {})
        wall = meta.get("wall_seconds")
        acc = meta.get("accuracy")
        lines.append(
            f"  {when:19s} {str(run.get('label') or '-'):20s} "
            f"{wall if wall is not None else float('nan'):8.2f} "
            f"{(100.0 * acc if acc is not None else float('nan')):7.0f}% "
            f"{len(run.get('stages', {})):6d}"
        )
    return "\n".join(lines)
