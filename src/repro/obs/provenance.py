"""The provenance layer: the full derivation DAG behind every verdict.

The PR 2 observability layer records *that* stages ran (spans, counters);
this module records *why* the engine did what it did — the evidence the
paper's whole pitch rests on (the abduced proof obligation Γ or failure
witness Υ must justify the verdict, Lemmas 1–5 / Fig. 6):

* **entailment** — each Lemma 1/2 closure check with its SMT verdict;
* **msa.node / msa.prune** — every MSA search node: the candidate
  variable set, its cost, the universally-quantified feasibility check's
  result, and subtree prunes;
* **qe.eliminate** — each Cooper elimination step: the variable, the
  coefficient δ and divisibility lcm, term counts before/after;
* **decompose** — the CNF/DNF split of a query into sub-queries;
* **query** — each sub-query asked, with the oracle's answer;
* **choice** — the Γ-vs-Υ cost comparison that picked which query to
  ask first;
* **abduce** — the abduction result (formula, cost, MSA backing it);
* **verdict** — the final classification with its justification.

Every node is a plain dict stamped with the enclosing span's id
(:func:`repro.obs.core.current_span_id`), so nodes join back onto the
span tree recorded by the core layer — :func:`render_tree` does exactly
that join to print the derivation tree the ``explain`` CLI shows.

The recorder is a separate switch from the core layer (``enable`` /
``REPRO_PROV``) because it costs more: provenance nodes carry formula
renderings.  Enabling provenance enables the core layer too (span ids
are meaningless without it).  ``benchmarks/bench_overhead.py`` pins the
provenance-enabled overhead below 10% of an abduction round and the
provenance-disabled overhead below 5%.

Serialization is the versioned ``repro.trace/1`` JSONL stream
(:func:`export_trace` / :func:`read_trace`): a header line, the span
events, the provenance nodes, then the aggregate snapshot — one
self-describing file that round-trips losslessly.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, TextIO

from . import context, core

__all__ = [
    "TRACE_SCHEMA",
    "disable",
    "enable",
    "export_trace",
    "fmla",
    "is_enabled",
    "mark",
    "node_count",
    "nodes",
    "nodes_since",
    "read_trace",
    "record",
    "render_tree",
    "reset",
]

TRACE_SCHEMA = "repro.trace/1"

_DEFAULT_BUFFER = 200_000
_FORMULA_LIMIT = 160

_enabled = False
_nodes: deque[dict] = deque(maxlen=_DEFAULT_BUFFER)
_next_id = 1


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

def enable(*, buffer_size: int | None = None) -> None:
    """Turn provenance recording on (idempotent).

    Also enables the core obs layer: provenance nodes are keyed to span
    ids, which only exist while spans are recorded.
    """
    global _enabled, _nodes
    if buffer_size is not None and buffer_size != _nodes.maxlen:
        _nodes = deque(_nodes, maxlen=buffer_size)
    core.enable()
    _enabled = True


def disable() -> None:
    """Stop recording; collected nodes stay readable."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Drop every recorded node and restart the id sequence."""
    global _nodes, _next_id
    _nodes = deque(maxlen=_nodes.maxlen or _DEFAULT_BUFFER)
    _next_id = 1


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------

def record(kind: str, **data: Any) -> int:
    """Append one derivation node; returns its id (0 while disabled).

    The node is stamped with the innermost open span's id (``span``), a
    monotone sequence point (``at``) that orders it against span
    openings, and — when a :mod:`trace context <repro.obs.context>` is
    bound — the ambient ``trace`` id, so derivation steps join both the
    span tree and the cross-process request trace.
    """
    global _next_id
    if not _enabled:
        return 0
    node = {
        "type": "prov",
        "id": _next_id,
        "span": core.current_span_id(),
        "at": core.span_sequence(),
        "kind": kind,
    }
    trace = context.current_trace_id()
    if trace is not None:
        node["trace"] = trace
    node.update(data)
    _next_id += 1
    _nodes.append(node)
    return node["id"]


def fmla(formula: Any, limit: int = _FORMULA_LIMIT) -> str:
    """A bounded string rendering of a formula for provenance payloads."""
    text = str(formula)
    if len(text) > limit:
        return text[: limit - 3] + "..."
    return text


def nodes() -> list[dict]:
    """A copy of the recorded nodes (oldest first)."""
    return list(_nodes)


def node_count() -> int:
    return len(_nodes)


def mark() -> int:
    """A position marker: pass to :func:`nodes_since` to get only the
    nodes recorded after this call (survives buffer eviction)."""
    return _next_id


def nodes_since(marker: int) -> list[dict]:
    """The nodes recorded since :func:`mark` returned ``marker``."""
    return [n for n in _nodes if n["id"] >= marker]


# ---------------------------------------------------------------------------
# the repro.trace/1 stream
# ---------------------------------------------------------------------------

def export_trace(destination: str | os.PathLike | TextIO,
                 *,
                 events: list[dict] | None = None,
                 prov_nodes: list[dict] | None = None,
                 snapshot: dict | None = None) -> int:
    """Write the versioned ``repro.trace/1`` JSONL stream.

    Line 1 is the header (``{"type": "header", "schema":
    "repro.trace/1"}``), then every span event, every provenance node,
    and finally the aggregate snapshot.  All inputs default to the live
    buffers; pass merged batch data for a fleet-wide trace.  Returns the
    number of lines written.
    """
    lines: list[dict] = [{"type": "header", "schema": TRACE_SCHEMA}]
    lines.extend(core.events() if events is None else events)
    lines.extend(nodes() if prov_nodes is None else prov_nodes)
    snap = core.snapshot() if snapshot is None else snapshot
    lines.append({"type": "snapshot", **snap})
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            return _write(handle, lines)
    return _write(destination, lines)


def _write(handle: TextIO, lines: list[dict]) -> int:
    for line in lines:
        handle.write(json.dumps(line, default=str))
        handle.write("\n")
    return len(lines)


def read_trace(source: str | os.PathLike | TextIO) -> dict:
    """Parse a ``repro.trace/1`` stream back into its three parts.

    Returns ``{"schema", "events", "nodes", "snapshot"}``.  Raises
    ``ValueError`` on a missing/foreign header, so format drift fails
    loudly instead of silently misparsing.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8") as handle:
            raw = [json.loads(line) for line in handle if line.strip()]
    else:
        raw = [json.loads(line) for line in source if line.strip()]
    if not raw or raw[0].get("type") != "header":
        raise ValueError("not a repro.trace stream: missing header line")
    schema = raw[0].get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(f"unsupported trace schema {schema!r} "
                         f"(expected {TRACE_SCHEMA})")
    parsed: dict = {"schema": schema, "events": [], "nodes": [],
                    "snapshot": None}
    for line in raw[1:]:
        kind = line.get("type")
        if kind == "span":
            parsed["events"].append(line)
        elif kind == "prov":
            parsed["nodes"].append(line)
        elif kind == "snapshot":
            parsed["snapshot"] = line
    return parsed


# ---------------------------------------------------------------------------
# rendering the derivation tree
# ---------------------------------------------------------------------------

def _describe(node: dict) -> str:
    """One human line per node kind — the leaves the verdict cites."""
    kind = node.get("kind", "?")
    if kind == "entailment":
        verdict = "yes" if node.get("verdict") else "no"
        return (f"[{node.get('lemma', 'entailment')}] "
                f"{node.get('check', '')} -> {verdict}"
                + (f"  (round {node['round']})" if "round" in node else ""))
    if kind == "choice":
        gamma = node.get("gamma_cost")
        upsilon = node.get("upsilon_cost")
        gamma_s = "none" if gamma is None else str(gamma)
        upsilon_s = "none" if upsilon is None else str(upsilon)
        return (f"[choice] ask {node.get('chosen', '?')} first: "
                f"Gamma cost {gamma_s} vs Upsilon cost {upsilon_s}"
                + (f"  (round {node['round']})" if "round" in node else ""))
    if kind == "decompose":
        return (f"[decompose] {node.get('query_kind', '?')} query -> "
                f"{node.get('clauses', 0)} {node.get('mode', '?').upper()} "
                f"clause(s)")
    if kind == "query":
        return (f"[query:{node.get('query_kind', '?')}] "
                f"{node.get('text', '')} -> {node.get('answer', '?')}")
    if kind == "msa.node":
        variables = ", ".join(node.get("variables", ())) or "(empty)"
        status = node.get("status", "?")
        suffix = ""
        if node.get("assignment"):
            pairs = ", ".join(f"{k}={v}"
                              for k, v in node["assignment"].items())
            suffix = f"  [{pairs}]"
        cost = node.get("cost")
        cost_s = "" if cost is None else f" cost={cost}"
        return f"[msa] candidate {{{variables}}}{cost_s}: {status}{suffix}"
    if kind == "msa.prune":
        variables = ", ".join(node.get("variables", ()))
        return (f"[msa] prune subtree (forall {{{variables}}} . phi "
                f"unsat)")
    if kind == "qe.eliminate":
        return (f"[qe] eliminate {node.get('var', '?')}: "
                f"delta={node.get('delta', '?')} "
                f"lcm={node.get('lcm', '?')} "
                f"bounds={node.get('lowers', 0)}L/{node.get('uppers', 0)}U "
                f"atoms {node.get('atoms_before', '?')}"
                f"->{node.get('atoms_after', '?')}")
    if kind == "abduce":
        return (f"[abduce] {node.get('abduction_kind', '?')}: "
                f"cost={node.get('cost', '?')} "
                f"{node.get('formula', '')}")
    if kind == "verdict":
        return (f"[verdict] {node.get('verdict', '?')} after "
                f"{node.get('rounds', 0)} round(s), "
                f"{node.get('queries', 0)} queries: "
                f"{node.get('reason', '')}")
    payload = {k: v for k, v in node.items()
               if k not in ("type", "id", "span", "at", "kind")}
    return f"[{kind}] {payload}"


def render_tree(events: list[dict] | None = None,
                prov_nodes: list[dict] | None = None,
                *, report: str | None = None) -> str:
    """Join provenance nodes onto the span tree and render it.

    ``events``/``prov_nodes`` default to the live buffers.  ``report``
    filters a merged batch trace down to one report's spans (span events
    tagged by the batch driver).  Spans whose parent was evicted from
    the bounded buffer surface as roots, so the render degrades
    gracefully on long runs.
    """
    evs = core.events() if events is None else events
    nds = nodes() if prov_nodes is None else prov_nodes
    spans = [e for e in evs if e.get("type") == "span"]
    if report is not None:
        spans = [e for e in spans if e.get("report", report) == report]
    by_id = {e.get("id", 0): e for e in spans}

    span_children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for e in spans:
        parent = e.get("parent", 0)
        if parent and parent in by_id:
            span_children.setdefault(parent, []).append(e)
        else:
            roots.append(e)

    node_children: dict[int, list[dict]] = {}
    orphan_nodes: list[dict] = []
    for n in nds:
        span_id = n.get("span", 0)
        if span_id and span_id in by_id:
            node_children.setdefault(span_id, []).append(n)
        else:
            orphan_nodes.append(n)

    lines: list[str] = []

    def bare(event: dict) -> bool:
        """A leaf span with nothing attached — a candidate to fold."""
        span_id = event.get("id", 0)
        return (not span_children.get(span_id)
                and not node_children.get(span_id))

    def emit(event: dict, indent: int) -> None:
        pad = "  " * indent
        dur_ms = 1000.0 * event.get("dur_s", 0.0)
        attrs = event.get("attrs") or {}
        attr_s = ""
        if attrs:
            attr_s = " {" + ", ".join(
                f"{k}={v}" for k, v in attrs.items()) + "}"
        lines.append(f"{pad}{event.get('name', '?')} "
                     f"({dur_ms:.2f} ms){attr_s}")
        span_id = event.get("id", 0)
        children: list[tuple[float, int, dict]] = []
        # interleave child spans (ordered by their open sequence) with
        # provenance nodes (ordered by their 'at' sequence point)
        for child in span_children.get(span_id, ()):
            children.append((float(child.get("id", 0)), 0, child))
        for n in node_children.get(span_id, ()):
            children.append((float(n.get("at", n.get("id", 0))) - 0.5,
                             1, n))
        ordered = sorted(children, key=lambda c: c[0])
        i = 0
        while i < len(ordered):
            _, is_node, child = ordered[i]
            if is_node:
                lines.append("  " * (indent + 1) + _describe(child))
                i += 1
                continue
            # fold runs of same-name leaf spans with nothing attached
            # (e.g. dozens of smt.check calls inside analysis) into one
            # summary line so the derivation stays readable
            j = i
            total = 0.0
            name = child.get("name")
            while (j < len(ordered) and not ordered[j][1]
                    and ordered[j][2].get("name") == name
                    and bare(ordered[j][2])):
                total += ordered[j][2].get("dur_s", 0.0)
                j += 1
            if j - i > 1:
                lines.append("  " * (indent + 1)
                             + f"{name} x{j - i} "
                             f"({1000.0 * total:.2f} ms total)")
                i = j
                continue
            emit(child, indent + 1)
            i += 1

    for root in sorted(roots, key=lambda e: e.get("id", 0)):
        emit(root, 0)
    for n in orphan_nodes:
        lines.append(_describe(n))
    return "\n".join(lines)


# honour an environment opt-in (mirrors REPRO_OBS for the core layer)
if os.environ.get("REPRO_PROV", "").strip() not in ("", "0", "false"):
    enable()
