"""Structured JSON logging (the versioned ``repro.log/1`` stream).

The span/counter layer answers *how long and how often*; the trace
stream answers *in what order*; this module answers *what happened, in
words an operator can grep* — access logs, worker lifecycle events
(retry / quarantine / pool rebuild), slow solver queries — each line a
self-describing JSON object with the ambient :mod:`trace context
<repro.obs.context>` auto-attached, so one ``grep trace_id`` joins the
logs to the spans, the provenance nodes and the flight recorder.

Design contracts, in the same spirit as the core obs layer:

* **near-zero cost unconfigured** — every probe checks one
  module-global int and returns; ``benchmarks/bench_overhead.py`` keeps
  the whole obs stack (this module included) under its bounds;
* **versioned** — a file sink starts with a header line ``{"type":
  "header", "schema": "repro.log/1"}`` and :func:`read_log` refuses
  foreign schemas, exactly like ``repro.trace/1``;
* **rate-limited** — a runaway event (a hot loop logging per
  iteration) is capped per event name per second; suppressed lines are
  counted and the count is attached to the next emitted line of that
  event (``"dropped": N``), so throttling is visible, never silent;
* **multiprocess-safe** — the file sink appends whole lines through an
  ``O_APPEND`` descriptor, so the batch driver's forked workers can
  share one log file without interleaving partial lines;
* **bounded in memory** — records always land in a ring buffer
  (:func:`records`) whether or not a file sink is configured, so tests
  and the serve flight recorder can read recent lines back without
  touching disk.

Record shape (one JSON object per line)::

    {"type": "log", "ts": 1722860000.123, "level": "info",
     "event": "serve.access", "trace": "9f2c...", "span": 41,
     "method": "POST", "path": "/v1/triage", "status": 202, ...}

``trace`` is the bound :class:`~repro.obs.context.TraceContext`'s
trace id; ``span`` is the innermost open obs span id.  Both are
omitted when absent rather than emitted as nulls.

The **slow-query log** rides the core layer's span-close hook: once
:func:`configure` sets ``slow_query_ms``, every closing span whose
name starts with a solver-stage prefix (``smt.`` / ``qe.`` / ``msa.``
/ ``sat.`` / ``omega.``) and whose duration exceeds the threshold
emits one ``slow_query`` record with the span's name, duration and
attributes — the "why was this request slow" answer, attributed to its
trace.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, TextIO

from . import context as _context
from . import core as _core

__all__ = [
    "LOG_SCHEMA",
    "configure",
    "debug",
    "error",
    "info",
    "is_enabled",
    "log",
    "read_log",
    "records",
    "reset",
    "slow_query_ms",
    "warning",
]

LOG_SCHEMA = "repro.log/1"

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {v: k for k, v in LEVELS.items()}

#: Span-name prefixes eligible for the slow-query log.
SLOW_QUERY_PREFIXES = ("smt.", "qe.", "msa.", "sat.", "omega.")

_RING_SIZE = 2_048
_DEFAULT_RATE_LIMIT = 200   # records per event name per second

# module state: one int gate (0 = disabled) keeps the unconfigured
# fast path to a single global load, like obs.core's _enabled flag
_threshold = 0              # 0 = logging off; else minimum level value
_slow_query_s: float | None = None
_rate_limit = _DEFAULT_RATE_LIMIT
_ring: deque[dict] = deque(maxlen=_RING_SIZE)
_file_fd: int | None = None
_file_path: str | None = None
_write_lock = threading.Lock()
# event name -> [window_epoch_second, emitted_in_window, dropped_total]
_buckets: dict[str, list] = {}


def is_enabled(level: str = "debug") -> bool:
    """True when records at ``level`` are currently being kept."""
    return bool(_threshold) and LEVELS.get(level, 10) >= _threshold


def slow_query_ms() -> float | None:
    """The configured slow-query threshold in ms (None = off)."""
    return None if _slow_query_s is None else _slow_query_s * 1000.0


def configure(*, file: str | os.PathLike | None = None,
              level: str = "info",
              slow_query_ms: float | None = None,
              rate_limit: int = _DEFAULT_RATE_LIMIT,
              ring_size: int = _RING_SIZE) -> None:
    """Turn structured logging on.

    ``file`` appends ``repro.log/1`` lines there (header written once
    per fresh/empty file; append mode, fork-safe); without it records
    live only in the in-memory ring.  ``level`` is the minimum kept
    level.  ``slow_query_ms`` arms the slow-query span hook.
    ``rate_limit`` caps records per event name per second.
    """
    global _threshold, _slow_query_s, _rate_limit, _ring
    global _file_fd, _file_path
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r} "
                         f"(expected one of {sorted(LEVELS)})")
    reset()
    _threshold = LEVELS[level]
    _rate_limit = max(1, int(rate_limit))
    if ring_size != _ring.maxlen:
        _ring = deque(maxlen=ring_size)
    if file is not None:
        path = os.fspath(file)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        _file_fd = os.open(path,
                           os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                           0o644)
        _file_path = path
        if fresh:
            _emit_raw({"type": "header", "schema": LOG_SCHEMA})
    if slow_query_ms is not None:
        _slow_query_s = max(0.0, float(slow_query_ms)) / 1000.0
        _core.set_span_hook(_observe_span)


def reset() -> None:
    """Turn logging off and drop all state (ring, buckets, file sink)."""
    global _threshold, _slow_query_s, _file_fd, _file_path
    _threshold = 0
    _slow_query_s = None
    _core.set_span_hook(None)
    if _file_fd is not None:
        try:
            os.close(_file_fd)
        except OSError:
            pass
    _file_fd = None
    _file_path = None
    _ring.clear()
    _buckets.clear()


# ---------------------------------------------------------------------------
# emitting
# ---------------------------------------------------------------------------

def log(level: str, event: str, **fields: Any) -> None:
    """Emit one structured record (no-op while unconfigured).

    The ambient trace id and innermost span id are attached
    automatically; ``fields`` must be JSON-representable plain data
    (anything else is stringified by the encoder).
    """
    threshold = _threshold
    if not threshold:
        return
    value = LEVELS.get(level, 20)
    if value < threshold:
        return
    dropped = _throttle(event)
    if dropped is None:
        return
    record: dict[str, Any] = {
        "type": "log",
        "ts": time.time(),
        "level": _LEVEL_NAMES.get(value, level),
        "event": event,
    }
    trace = _context.current()
    if trace is not None:
        record["trace"] = trace.trace_id
    span = _core.current_span_id()
    if span:
        record["span"] = span
    if dropped:
        record["dropped"] = dropped
    record.update(fields)
    _ring.append(record)
    if _file_fd is not None:
        _emit_raw(record)


def debug(event: str, **fields: Any) -> None:
    log("debug", event, **fields)


def info(event: str, **fields: Any) -> None:
    log("info", event, **fields)


def warning(event: str, **fields: Any) -> None:
    log("warning", event, **fields)


def error(event: str, **fields: Any) -> None:
    log("error", event, **fields)


def _throttle(event: str) -> int | None:
    """Token accounting per event name per wall second.

    Returns None when this record must be dropped, else the number of
    records of this event dropped since the last one that got through
    (attached to the record so suppression is visible).
    """
    now = int(time.time())
    bucket = _buckets.get(event)
    if bucket is None:
        _buckets[event] = [now, 1, 0]
        return 0
    if bucket[0] != now:
        bucket[0] = now
        bucket[1] = 1
        dropped, bucket[2] = bucket[2], 0
        return dropped
    if bucket[1] >= _rate_limit:
        bucket[2] += 1
        return None
    bucket[1] += 1
    dropped, bucket[2] = bucket[2], 0
    return dropped


def _emit_raw(record: dict) -> None:
    """Append one whole line to the file sink.

    A single ``os.write`` of a complete line on an ``O_APPEND``
    descriptor is atomic for reasonable line lengths on POSIX, so
    forked workers sharing the sink never interleave partial lines.
    The lock serializes threads within this process.
    """
    fd = _file_fd
    if fd is None:
        return
    data = (json.dumps(record, default=str) + "\n").encode()
    try:
        with _write_lock:
            os.write(fd, data)
    except OSError:
        pass  # a full disk must never fail the computation being logged


# ---------------------------------------------------------------------------
# the slow-query hook (installed on the core span-close path)
# ---------------------------------------------------------------------------

def _observe_span(event: dict) -> None:
    """Core calls this with every closed span's event dict.

    Hot path: every span closing in the process funnels through here
    while the slow-query hook is armed, so the fast-exit compare comes
    first and reads the event dict directly (core always populates
    ``dur_s``/``name``).
    """
    threshold = _slow_query_s
    if threshold is None or event["dur_s"] < threshold:
        return
    name = event.get("name", "")
    if not name.startswith(SLOW_QUERY_PREFIXES):
        return
    record_fields: dict[str, Any] = {
        "name": name,
        "dur_ms": round(1000.0 * event.get("dur_s", 0.0), 3),
        "span_id": event.get("id", 0),
    }
    attrs = event.get("attrs")
    if attrs:
        record_fields["attrs"] = dict(attrs)
    if event.get("error"):
        record_fields["error"] = event["error"]
    log("warning", "slow_query", **record_fields)


# ---------------------------------------------------------------------------
# reading the stream back
# ---------------------------------------------------------------------------

def records(*, event: str | None = None,
            trace: str | None = None) -> list[dict]:
    """A copy of the in-memory ring (oldest first), optionally filtered
    by event name and/or trace id."""
    out = list(_ring)
    if event is not None:
        out = [r for r in out if r.get("event") == event]
    if trace is not None:
        out = [r for r in out if r.get("trace") == trace]
    return out


def read_log(source: str | os.PathLike | TextIO) -> dict:
    """Parse a ``repro.log/1`` file back into its records.

    Returns ``{"schema", "records"}``.  A missing or foreign header
    fails loudly (format drift must not silently misparse); unparseable
    lines (a torn write from a crashed process) are skipped, matching
    the corruption tolerance of the cache store.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    parsed: list[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            parsed.append(json.loads(line))
        except ValueError:
            continue
    if not parsed or parsed[0].get("type") != "header":
        raise ValueError("not a repro.log stream: missing header line")
    schema = parsed[0].get("schema")
    if schema != LOG_SCHEMA:
        raise ValueError(f"unsupported log schema {schema!r} "
                         f"(expected {LOG_SCHEMA})")
    return {
        "schema": schema,
        "records": [r for r in parsed[1:] if r.get("type") == "log"],
    }


# honour an environment opt-in so any entry point (including workers
# spawned rather than forked) picks up the operator's log config
_env_level = os.environ.get("REPRO_LOG_LEVEL", "").strip().lower()
_env_file = os.environ.get("REPRO_LOG_FILE", "").strip()
_env_slow = os.environ.get("REPRO_SLOW_QUERY_MS", "").strip()
if _env_level or _env_file or _env_slow:
    try:
        configure(
            file=_env_file or None,
            level=_env_level if _env_level in LEVELS else "info",
            slow_query_ms=float(_env_slow) if _env_slow else None,
        )
    except (OSError, ValueError):
        pass  # a bad env var must not break import
