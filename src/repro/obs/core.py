"""The observability engine: spans, counters, gauges, event buffer.

Everything lives in one module-level :class:`_State` per process.  The
design goal is *near-zero cost when disabled*: every public probe checks
a single module-global boolean first and returns immediately —

* :func:`span` hands back a shared, allocation-free null context manager,
* :func:`inc` / :func:`gauge` return before touching any dict,

so an instrumented hot loop pays one function call and one global load
per probe.  ``benchmarks/bench_overhead.py`` pins this cost below 5% of
an abduction round; :func:`stubbed` provides the "instrumentation
compiled out" baseline it compares against.

Enabled-mode data model:

* **spans** — nestable wall-clock regions (``with span("qe.cooper")``).
  Closing a span appends one event to the bounded buffer and folds its
  duration into a per-name aggregate (count / total / max), so the
  aggregate survives even after the buffer evicts old events.
* **counters** — monotone named integers (``inc("smt.is_sat.miss")``).
* **gauges** — last-write-wins named numbers.
* **events** — a bounded ``deque`` of plain dicts, exported as JSONL.

Snapshots are plain dicts of plain scalars, safe to pickle across the
batch driver's process boundary; :func:`merge_snapshots` sums counters
and span aggregates from many workers into one fleet-wide view.

The state is process-local on purpose: the batch driver's fork()ed
workers each start from the parent's (usually empty) state and ship
their snapshots home as data, never as shared memory.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterable, TextIO

__all__ = [
    "NULL_SPAN",
    "capture",
    "disable",
    "enable",
    "event_count",
    "events",
    "export_jsonl",
    "gauge",
    "hit_rate",
    "inc",
    "is_enabled",
    "merge_snapshots",
    "reset",
    "snapshot",
    "span",
    "stubbed",
]

_DEFAULT_BUFFER = 10_000


class _State:
    __slots__ = ("counters", "gauges", "span_stats", "events", "depth")

    def __init__(self, buffer_size: int = _DEFAULT_BUFFER):
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        # name -> [count, total_seconds, max_seconds]
        self.span_stats: dict[str, list] = {}
        self.events: deque[dict] = deque(maxlen=buffer_size)
        self.depth = 0


_enabled = False
_state = _State()


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

def enable(*, buffer_size: int | None = None) -> None:
    """Turn instrumentation on (idempotent).

    ``buffer_size`` bounds the in-memory event buffer; when omitted the
    current buffer (and any data already in it) is kept.
    """
    global _enabled, _state
    if buffer_size is not None and buffer_size != _state.events.maxlen:
        _state = _State(buffer_size)
    _enabled = True


def disable() -> None:
    """Turn instrumentation off; collected data stays readable."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Drop all collected data (counters, gauges, spans, events)."""
    global _state
    _state = _State(_state.events.maxlen or _DEFAULT_BUFFER)


# ---------------------------------------------------------------------------
# probes
# ---------------------------------------------------------------------------

class _NullSpan:
    """Shared do-nothing span handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "attrs", "_start")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs: Any) -> "_Span":
        """Attach (or overwrite) attributes mid-span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        _state.depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        state = _state
        state.depth -= 1
        stats = state.span_stats.get(self.name)
        if stats is None:
            state.span_stats[self.name] = [1, duration, duration]
        else:
            stats[0] += 1
            stats[1] += duration
            if duration > stats[2]:
                stats[2] = duration
        event = {
            "type": "span",
            "name": self.name,
            "ts": time.time(),
            "dur_s": duration,
            "depth": state.depth,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        if exc_type is not None:
            event["error"] = exc_type.__name__
        state.events.append(event)
        return False


def span(name: str, **attrs: Any):
    """A nestable timed region: ``with span("qe.cooper", var="x"): ...``.

    Returns the shared null span when disabled — callers should avoid
    computing expensive attribute values eagerly on hot paths.
    """
    if not _enabled:
        return NULL_SPAN
    return _Span(name, attrs)


def inc(name: str, value: int = 1) -> None:
    """Add ``value`` to the named monotone counter."""
    if not _enabled:
        return
    counters = _state.counters
    counters[name] = counters.get(name, 0) + value


def gauge(name: str, value: float) -> None:
    """Record the latest value of a named gauge."""
    if not _enabled:
        return
    _state.gauges[name] = value


# ---------------------------------------------------------------------------
# reading the data out
# ---------------------------------------------------------------------------

def snapshot() -> dict:
    """The aggregate view: counters, gauges and per-span-name stats.

    Plain dicts of plain scalars — picklable, JSON-serializable, and
    mergeable across processes with :func:`merge_snapshots`.
    """
    return {
        "enabled": _enabled,
        "counters": dict(_state.counters),
        "gauges": dict(_state.gauges),
        "spans": {
            name: {"count": s[0], "total_s": s[1], "max_s": s[2]}
            for name, s in _state.span_stats.items()
        },
    }


def events() -> list[dict]:
    """A copy of the bounded event buffer (oldest first)."""
    return list(_state.events)


def event_count() -> int:
    """Current number of buffered events (cheap; no copy)."""
    return len(_state.events)


def export_jsonl(destination: str | os.PathLike | TextIO) -> int:
    """Write the event buffer (then a snapshot line) as JSONL.

    Returns the number of lines written.  ``destination`` may be a path
    or an open text file.
    """
    lines = events()
    lines.append({"type": "snapshot", **snapshot()})
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            return _write_jsonl(handle, lines)
    return _write_jsonl(destination, lines)


def _write_jsonl(handle: TextIO, lines: Iterable[dict]) -> int:
    count = 0
    for line in lines:
        handle.write(json.dumps(line, default=str))
        handle.write("\n")
        count += 1
    return count


def merge_snapshots(*snaps: dict | None) -> dict:
    """Merge worker snapshots: counters and span stats sum, gauges keep
    the last non-missing value, ``enabled`` ORs."""
    merged: dict = {"enabled": False, "counters": {}, "gauges": {},
                    "spans": {}}
    for snap in snaps:
        if not snap:
            continue
        merged["enabled"] = merged["enabled"] or bool(snap.get("enabled"))
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = \
                merged["counters"].get(name, 0) + value
        merged["gauges"].update(snap.get("gauges", {}))
        for name, stats in snap.get("spans", {}).items():
            into = merged["spans"].get(name)
            if into is None:
                merged["spans"][name] = dict(stats)
            else:
                into["count"] += stats["count"]
                into["total_s"] += stats["total_s"]
                into["max_s"] = max(into["max_s"], stats["max_s"])
    return merged


def hit_rate(snap: dict, prefix: str) -> float | None:
    """Convenience: ``prefix.hit / (prefix.hit + prefix.miss)`` from a
    snapshot's counters; None when the pair is absent."""
    counters = snap.get("counters", {})
    hits = counters.get(f"{prefix}.hit", 0)
    misses = counters.get(f"{prefix}.miss", 0)
    total = hits + misses
    if total == 0:
        return None
    return hits / total


class _Capture:
    """Result holder for :func:`capture`."""

    __slots__ = ("snapshot",)

    def __init__(self) -> None:
        self.snapshot: dict | None = None


@contextmanager
def capture():
    """Delta-scope: counters/gauges/spans accrued inside the block.

    Yields a holder whose ``snapshot`` attribute is filled in on exit
    with only the activity of the block (counters and span stats are
    differenced against the entry state).  No-op (snapshot None) while
    disabled.
    """
    holder = _Capture()
    if not _enabled:
        yield holder
        return
    before = snapshot()
    try:
        yield holder
    finally:
        after = snapshot()
        holder.snapshot = _diff_snapshots(before, after)


def _diff_snapshots(before: dict, after: dict) -> dict:
    counters = {
        name: value - before["counters"].get(name, 0)
        for name, value in after["counters"].items()
        if value - before["counters"].get(name, 0)
    }
    spans = {}
    for name, stats in after["spans"].items():
        prior = before["spans"].get(name)
        count = stats["count"] - (prior["count"] if prior else 0)
        if count <= 0:
            continue
        spans[name] = {
            "count": count,
            "total_s": stats["total_s"] - (prior["total_s"] if prior
                                           else 0.0),
            "max_s": stats["max_s"],
        }
    return {
        "enabled": True,
        "counters": counters,
        "gauges": dict(after["gauges"]),
        "spans": spans,
    }


# ---------------------------------------------------------------------------
# benchmarking support
# ---------------------------------------------------------------------------

@contextmanager
def stubbed():
    """Swap the probes for bare no-ops on the ``repro.obs`` package.

    This is the "instrumentation removed" baseline for
    ``benchmarks/bench_overhead.py``: call sites access probes through
    the package namespace (``obs.inc(...)``), so patching the package
    attributes measures what a build without any probes would cost.
    """
    import sys

    noop_inc = lambda name, value=1: None          # noqa: E731
    noop_gauge = lambda name, value: None          # noqa: E731
    noop_span = lambda name, **attrs: NULL_SPAN    # noqa: E731
    targets = [sys.modules[__name__]]
    package = sys.modules.get(__name__.rsplit(".", 1)[0])
    if package is not None:
        targets.append(package)
    saved = [(t, t.inc, t.gauge, t.span) for t in targets]
    try:
        for t in targets:
            t.inc, t.gauge, t.span = noop_inc, noop_gauge, noop_span
        yield
    finally:
        for t, inc_, gauge_, span_ in saved:
            t.inc, t.gauge, t.span = inc_, gauge_, span_


# honour an environment opt-in so any entry point can be traced without
# code changes (workers forked from an enabled parent inherit the flag
# directly; this covers spawn-style and standalone processes)
if os.environ.get("REPRO_OBS", "").strip() not in ("", "0", "false"):
    enable()
