"""The observability engine: spans, counters, gauges, event buffer.

Everything lives in one module-level :class:`_State` per process.  The
design goal is *near-zero cost when disabled*: every public probe checks
a single module-global boolean first and returns immediately —

* :func:`span` hands back a shared, allocation-free null context manager,
* :func:`inc` / :func:`gauge` return before touching any dict,

so an instrumented hot loop pays one function call and one global load
per probe.  ``benchmarks/bench_overhead.py`` pins this cost below 5% of
an abduction round; :func:`stubbed` provides the "instrumentation
compiled out" baseline it compares against.

Enabled-mode data model:

* **spans** — nestable wall-clock regions (``with span("qe.cooper")``).
  Each live span gets a process-unique id and remembers its parent, so
  the event stream reconstructs the call tree exactly (and the
  provenance layer can key derivation steps to the enclosing span).
  Closing a span appends one event to the bounded buffer, folds its
  duration into a per-name aggregate (count / total / max), and feeds a
  per-name duration histogram, so aggregates and percentiles survive
  even after the buffer evicts old events.
* **counters** — monotone named integers (``inc("smt.is_sat.miss")``).
* **gauges** — last-write-wins named numbers.
* **histograms** — streaming value distributions (``observe("qe.blowup",
  3.5)``) with bounded reservoirs; snapshots carry p50/p95/p99.
* **events** — a bounded ``deque`` of plain dicts, exported as JSONL,
  Chrome trace-event JSON (:func:`export_chrome`, Perfetto-loadable) or
  Prometheus text format (:func:`export_prometheus`).

Snapshots are plain dicts of plain scalars, safe to pickle across the
batch driver's process boundary; :func:`merge_snapshots` sums counters
and span aggregates from many workers into one fleet-wide view.

The state is process-local on purpose: the batch driver's fork()ed
workers each start from the parent's (usually empty) state and ship
their snapshots home as data, never as shared memory.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterable, TextIO

from . import context as _context

__all__ = [
    "NULL_SPAN",
    "capture",
    "current_span_id",
    "disable",
    "enable",
    "event_count",
    "events",
    "export_chrome",
    "export_jsonl",
    "export_prometheus",
    "gauge",
    "hit_rate",
    "inc",
    "is_enabled",
    "merge_snapshots",
    "observe",
    "percentile",
    "reset",
    "set_span_hook",
    "snapshot",
    "span",
    "span_sequence",
    "stubbed",
]

_DEFAULT_BUFFER = 10_000

#: Histogram reservoirs are decimated (every other sample dropped, the
#: sampling stride doubled) once they reach this many samples, so a
#: histogram's memory stays bounded while its percentiles stay a fair
#: sketch of the whole stream.
_HIST_RESERVOIR = 2_048


class _Hist:
    """A streaming histogram: exact count/sum/min/max plus a bounded,
    stride-decimated sample reservoir for percentile estimates."""

    __slots__ = ("count", "total", "min", "max", "samples", "stride")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []
        self.stride = 1

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.count % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) >= _HIST_RESERVOIR:
                self.samples = self.samples[::2]
                self.stride *= 2


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a sample list (q in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def _hist_snapshot(h: _Hist) -> dict:
    return {
        "count": h.count,
        "total": h.total,
        "min": h.min if h.count else 0.0,
        "max": h.max if h.count else 0.0,
        "p50": percentile(h.samples, 0.50),
        "p95": percentile(h.samples, 0.95),
        "p99": percentile(h.samples, 0.99),
        "samples": list(h.samples),
        "stride": h.stride,
    }


class _State:
    __slots__ = ("counters", "gauges", "span_stats", "hists", "events",
                 "ids", "seq", "tls")

    def __init__(self, buffer_size: int = _DEFAULT_BUFFER):
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        # name -> [count, total_seconds, max_seconds]
        self.span_stats: dict[str, list] = {}
        self.hists: dict[str, _Hist] = {}
        self.events: deque[dict] = deque(maxlen=buffer_size)
        # span ids come from an itertools.count — allocation is a single
        # atomic-under-the-GIL call, so the serve daemon's worker threads
        # never mint duplicate ids; ``seq`` trails the allocator so
        # span_sequence() can still peek at the clock without consuming
        self.ids = itertools.count(1)
        self.seq = 1
        # each thread nests its own spans: the stack (and therefore
        # parent/depth attribution) is thread-local so concurrent jobs
        # in the serve daemon cannot corrupt each other's nesting
        self.tls = threading.local()

    def stack(self) -> list[int]:
        stack = getattr(self.tls, "stack", None)
        if stack is None:
            stack = self.tls.stack = []
        return stack


_enabled = False
_state = _State()

#: Optional observer called with every closed span's event dict (after
#: it is buffered).  The logging layer installs its slow-query watcher
#: here; anything else (test probes, future samplers) can too.  One
#: global slot, None when absent — the disabled cost is one load+test.
_span_hook: Callable[[dict], None] | None = None


def set_span_hook(hook: Callable[[dict], None] | None) -> None:
    """Install (or clear, with None) the span-close observer."""
    global _span_hook
    _span_hook = hook


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

def enable(*, buffer_size: int | None = None) -> None:
    """Turn instrumentation on (idempotent).

    ``buffer_size`` bounds the in-memory event buffer; when omitted the
    current buffer (and any data already in it) is kept.
    """
    global _enabled, _state
    if buffer_size is not None and buffer_size != _state.events.maxlen:
        _state = _State(buffer_size)
    _enabled = True


def disable() -> None:
    """Turn instrumentation off; collected data stays readable."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Drop all collected data (counters, gauges, spans, events)."""
    global _state
    _state = _State(_state.events.maxlen or _DEFAULT_BUFFER)


# ---------------------------------------------------------------------------
# probes
# ---------------------------------------------------------------------------

class _NullSpan:
    """Shared do-nothing span handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "attrs", "id", "parent", "_start", "_wall")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.id = 0
        self.parent = 0
        self._start = 0.0
        self._wall = 0.0

    def set(self, **attrs: Any) -> "_Span":
        """Attach (or overwrite) attributes mid-span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        state = _state
        self.id = next(state.ids)
        state.seq = self.id + 1
        stack = state.stack()
        self.parent = stack[-1] if stack else 0
        stack.append(self.id)
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        state = _state
        # restore nesting even when an exception unwound inner spans out
        # of order: remove this span wherever it sits in the stack, not
        # only when it is on top, so nothing downstream inherits a stale
        # parent
        stack = state.stack()
        if stack:
            if stack[-1] == self.id:
                stack.pop()
            else:
                try:
                    stack.remove(self.id)
                except ValueError:
                    pass
        stats = state.span_stats.get(self.name)
        if stats is None:
            state.span_stats[self.name] = [1, duration, duration]
        else:
            stats[0] += 1
            stats[1] += duration
            if duration > stats[2]:
                stats[2] = duration
        hist = state.hists.get(self.name)
        if hist is None:
            hist = state.hists[self.name] = _Hist()
        hist.add(duration)
        event = {
            "type": "span",
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "ts": self._wall,
            "dur_s": duration,
            "depth": len(stack),
        }
        ctx = getattr(_context._tls, "ctx", None)
        if ctx is not None:
            event["trace"] = ctx.trace_id
        if self.attrs:
            event["attrs"] = self.attrs
        if exc_type is not None:
            event["error"] = exc_type.__name__
        state.events.append(event)
        hook = _span_hook
        if hook is not None:
            try:
                hook(event)
            except Exception:
                pass  # an observer must never fail the observed code
        return False


def span(name: str, **attrs: Any):
    """A nestable timed region: ``with span("qe.cooper", var="x"): ...``.

    Returns the shared null span when disabled — callers should avoid
    computing expensive attribute values eagerly on hot paths.
    """
    if not _enabled:
        return NULL_SPAN
    return _Span(name, attrs)


def inc(name: str, value: int = 1) -> None:
    """Add ``value`` to the named monotone counter."""
    if not _enabled:
        return
    counters = _state.counters
    counters[name] = counters.get(name, 0) + value


def gauge(name: str, value: float) -> None:
    """Record the latest value of a named gauge."""
    if not _enabled:
        return
    _state.gauges[name] = value


def observe(name: str, value: float) -> None:
    """Feed one value into the named histogram.

    Closing spans feed their duration into the histogram of the span's
    name automatically; ``observe`` is for every other distribution
    (formula sizes, QE blowup ratios, solver-call latencies measured
    out-of-span).  Snapshots summarize each histogram as
    count/total/min/max plus p50/p95/p99.
    """
    if not _enabled:
        return
    hist = _state.hists.get(name)
    if hist is None:
        hist = _state.hists[name] = _Hist()
    hist.add(value)


def current_span_id() -> int:
    """The id of the innermost open span (0 when none / disabled).

    Span ids are process-unique and appear in every span event as
    ``id``/``parent``, so external records (e.g. provenance nodes)
    stamped with this id can be joined back onto the span tree.  The
    stack consulted is this thread's own.
    """
    stack = getattr(_state.tls, "stack", None)
    return stack[-1] if stack else 0


def span_sequence() -> int:
    """An id no span issued so far exceeds — a monotone clock that lets
    external records order themselves against span openings."""
    return _state.seq


# ---------------------------------------------------------------------------
# reading the data out
# ---------------------------------------------------------------------------

def _safe_copy(d: dict) -> dict:
    """Copy a dict that other threads may be growing right now.

    ``dict(d)`` raises RuntimeError when the source is resized
    mid-iteration (a /metrics scrape racing live jobs); retrying wins
    almost immediately because copies are much faster than the mutation
    rate.  Values already present are never torn — ints and list cells
    are replaced atomically under the GIL — so counters in the copy are
    always real (monotone) observed values.
    """
    for _ in range(64):
        try:
            return dict(d)
        except RuntimeError:
            continue
    try:  # pathological churn: settle for whatever snapshot we can get
        return dict(list(d.items()))
    except RuntimeError:
        return {}


def snapshot() -> dict:
    """The aggregate view: counters, gauges and per-span-name stats.

    Plain dicts of plain scalars — picklable, JSON-serializable,
    mergeable across processes with :func:`merge_snapshots`, and safe
    to take from a scraper thread while worker threads record.
    """
    return {
        "enabled": _enabled,
        "counters": _safe_copy(_state.counters),
        "gauges": _safe_copy(_state.gauges),
        "spans": {
            name: {"count": s[0], "total_s": s[1], "max_s": s[2]}
            for name, s in _safe_copy(_state.span_stats).items()
        },
        "hists": {
            name: _hist_snapshot(h)
            for name, h in _safe_copy(_state.hists).items()
        },
    }


def events() -> list[dict]:
    """A copy of the bounded event buffer (oldest first)."""
    return list(_state.events)


def event_count() -> int:
    """Current number of buffered events (cheap; no copy)."""
    return len(_state.events)


def export_jsonl(destination: str | os.PathLike | TextIO) -> int:
    """Write the event buffer (then a snapshot line) as JSONL.

    Returns the number of lines written.  ``destination`` may be a path
    or an open text file.
    """
    lines = events()
    lines.append({"type": "snapshot", **snapshot()})
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            return _write_jsonl(handle, lines)
    return _write_jsonl(destination, lines)


def _write_jsonl(handle: TextIO, lines: Iterable[dict]) -> int:
    count = 0
    for line in lines:
        handle.write(json.dumps(line, default=str))
        handle.write("\n")
        count += 1
    return count


def export_chrome(destination: str | os.PathLike | TextIO,
                  source_events: list[dict] | None = None) -> dict:
    """Write the span events as Chrome trace-event JSON (Perfetto/about:
    tracing loadable).

    Each closed span becomes one complete ("ph": "X") event with
    microsecond timestamps; span start times come from the recorded wall
    clock and duration, so nesting in the viewer matches the engine's
    call structure exactly.  Events carrying a ``report`` tag (merged
    batch traces) are mapped to one thread lane per report, with
    ``thread_name`` metadata so lanes are labelled in the UI.

    ``source_events`` defaults to the live buffer; pass the merged event
    list of a batch run to export a fleet-wide trace.  Returns the
    trace dict that was written.
    """
    evs = events() if source_events is None else source_events
    pid = os.getpid()
    lanes: dict[str, int] = {}
    trace_events: list[dict] = []
    for event in evs:
        if event.get("type") != "span":
            continue
        lane_key = str(event.get("report", "main"))
        tid = lanes.get(lane_key)
        if tid is None:
            tid = lanes[lane_key] = len(lanes) + 1
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": lane_key},
            })
        entry = {
            "ph": "X",
            "name": event["name"],
            "cat": "repro",
            "pid": pid,
            "tid": tid,
            "ts": (event["ts"] - event["dur_s"]) * 1e6,
            "dur": event["dur_s"] * 1e6,
        }
        args = dict(event.get("attrs", {}))
        args["span_id"] = event.get("id", 0)
        if event.get("error"):
            args["error"] = event["error"]
        entry["args"] = args
        trace_events.append(entry)
    trace = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, default=str)
    else:
        json.dump(trace, destination, default=str)
    return trace


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


def export_prometheus(destination: str | os.PathLike | TextIO | None = None,
                      snap: dict | None = None) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters become ``repro_<name>_total``, gauges ``repro_<name>``,
    span aggregates ``repro_span_seconds_{count,sum,max}{span="..."}``,
    and histograms summary-style quantile series
    ``repro_hist{name="...",quantile="0.5"}``.  ``snap`` defaults to the
    live :func:`snapshot`; pass a merged batch snapshot for fleet-wide
    metrics.  Returns the text; also writes it when ``destination`` is
    given.
    """
    if snap is None:
        snap = snapshot()
    lines: list[str] = []
    counters = snap.get("counters", {})
    for name in sorted(counters):
        metric = f"repro_{_prom_name(name)}_total"
        lines.append(f"# HELP {metric} Monotone event count for "
                     f"'{name}'.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")
    gauges = snap.get("gauges", {})
    for name in sorted(gauges):
        metric = f"repro_{_prom_name(name)}"
        lines.append(f"# HELP {metric} Last recorded value of "
                     f"'{name}'.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauges[name]}")
    spans = snap.get("spans", {})
    if spans:
        lines.append("# HELP repro_span_seconds Wall-clock totals per "
                     "span name.")
        lines.append("# TYPE repro_span_seconds summary")
        for name in sorted(spans):
            s = spans[name]
            lines.append(
                f'repro_span_seconds_count{{span="{name}"}} {s["count"]}')
            lines.append(
                f'repro_span_seconds_sum{{span="{name}"}} {s["total_s"]}')
            lines.append(
                f'repro_span_seconds_max{{span="{name}"}} {s["max_s"]}')
    hists = snap.get("hists", {})
    if hists:
        lines.append("# HELP repro_hist Streaming distribution "
                     "quantiles per histogram name.")
        lines.append("# TYPE repro_hist summary")
        for name in sorted(hists):
            h = hists[name]
            for q, key in (("0.5", "p50"), ("0.95", "p95"),
                           ("0.99", "p99")):
                lines.append(
                    f'repro_hist{{name="{name}",quantile="{q}"}} '
                    f'{h.get(key, 0.0)}'
                )
            lines.append(f'repro_hist_count{{name="{name}"}} {h["count"]}')
            lines.append(f'repro_hist_sum{{name="{name}"}} {h["total"]}')
    text = "\n".join(lines) + "\n"
    if destination is not None:
        if isinstance(destination, (str, os.PathLike)):
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            destination.write(text)
    return text


def merge_snapshots(*snaps: dict | None) -> dict:
    """Merge worker snapshots: counters, span stats and histograms sum,
    gauges keep the last non-missing value, ``enabled`` ORs.

    Snapshots stamped with an ``attempt`` label (partial telemetry from
    a failed triage attempt) contribute their label to the merged
    ``attempts`` list, so retried/degraded reports keep per-attempt
    provenance in the fleet-wide view.
    """
    merged: dict = {"enabled": False, "counters": {}, "gauges": {},
                    "spans": {}, "hists": {}}
    attempts: list[int] = []
    traces: list[str] = []
    for snap in snaps:
        if not snap:
            continue
        merged["enabled"] = merged["enabled"] or bool(snap.get("enabled"))
        if "attempt" in snap:
            attempts.append(snap["attempt"])
        attempts.extend(snap.get("attempts", ()))
        if snap.get("trace"):
            traces.append(snap["trace"])
        traces.extend(snap.get("traces", ()))
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = \
                merged["counters"].get(name, 0) + value
        merged["gauges"].update(snap.get("gauges", {}))
        for name, stats in snap.get("spans", {}).items():
            into = merged["spans"].get(name)
            if into is None:
                merged["spans"][name] = dict(stats)
            else:
                into["count"] += stats["count"]
                into["total_s"] += stats["total_s"]
                into["max_s"] = max(into["max_s"], stats["max_s"])
        for name, h in snap.get("hists", {}).items():
            into = merged["hists"].get(name)
            if into is None:
                merged["hists"][name] = dict(h)
            else:
                samples = into.get("samples", []) + h.get("samples", [])
                if len(samples) > _HIST_RESERVOIR:
                    samples = sorted(samples)[::2]
                merged["hists"][name] = {
                    "count": into["count"] + h["count"],
                    "total": into["total"] + h["total"],
                    "min": min(into["min"], h["min"]),
                    "max": max(into["max"], h["max"]),
                    "p50": percentile(samples, 0.50),
                    "p95": percentile(samples, 0.95),
                    "p99": percentile(samples, 0.99),
                    "samples": samples,
                }
    if attempts:
        merged["attempts"] = sorted(set(attempts))
    if traces:
        merged["traces"] = sorted(set(traces))
    return merged


def hit_rate(snap: dict, prefix: str) -> float | None:
    """Convenience: ``prefix.hit / (prefix.hit + prefix.miss)`` from a
    snapshot's counters; None when the pair is absent."""
    counters = snap.get("counters", {})
    hits = counters.get(f"{prefix}.hit", 0)
    misses = counters.get(f"{prefix}.miss", 0)
    total = hits + misses
    if total == 0:
        return None
    return hits / total


class _Capture:
    """Result holder for :func:`capture`."""

    __slots__ = ("snapshot",)

    def __init__(self) -> None:
        self.snapshot: dict | None = None


@contextmanager
def capture():
    """Delta-scope: counters/gauges/spans accrued inside the block.

    Yields a holder whose ``snapshot`` attribute is filled in on exit
    with only the activity of the block (counters and span stats are
    differenced against the entry state).  No-op (snapshot None) while
    disabled.
    """
    holder = _Capture()
    if not _enabled:
        yield holder
        return
    before = snapshot()
    try:
        yield holder
    finally:
        after = snapshot()
        holder.snapshot = _diff_snapshots(before, after)


def _diff_snapshots(before: dict, after: dict) -> dict:
    counters = {
        name: value - before["counters"].get(name, 0)
        for name, value in after["counters"].items()
        if value - before["counters"].get(name, 0)
    }
    spans = {}
    for name, stats in after["spans"].items():
        prior = before["spans"].get(name)
        count = stats["count"] - (prior["count"] if prior else 0)
        if count <= 0:
            continue
        spans[name] = {
            "count": count,
            "total_s": stats["total_s"] - (prior["total_s"] if prior
                                           else 0.0),
            "max_s": stats["max_s"],
        }
    hists = {}
    for name, h in after.get("hists", {}).items():
        prior = before.get("hists", {}).get(name)
        count = h["count"] - (prior["count"] if prior else 0)
        if count <= 0:
            continue
        if prior is None:
            samples = h["samples"]
        elif prior.get("stride") == h.get("stride"):
            # no decimation happened inside the block: the new samples
            # are exactly the tail appended since entry
            samples = h["samples"][len(prior["samples"]):]
        else:
            samples = h["samples"]  # decimated: the reservoir is the
            #                         best remaining sketch of the block
        hists[name] = {
            "count": count,
            "total": h["total"] - (prior["total"] if prior else 0.0),
            "min": h["min"],
            "max": h["max"],
            "p50": percentile(samples, 0.50),
            "p95": percentile(samples, 0.95),
            "p99": percentile(samples, 0.99),
            "samples": samples,
            "stride": h.get("stride", 1),
        }
    return {
        "enabled": True,
        "counters": counters,
        "gauges": dict(after["gauges"]),
        "spans": spans,
        "hists": hists,
    }


# ---------------------------------------------------------------------------
# benchmarking support
# ---------------------------------------------------------------------------

@contextmanager
def stubbed():
    """Swap the probes for bare no-ops on the ``repro.obs`` package.

    This is the "instrumentation removed" baseline for
    ``benchmarks/bench_overhead.py``: call sites access probes through
    the package namespace (``obs.inc(...)``), so patching the package
    attributes measures what a build without any probes would cost.
    """
    import sys

    noop_inc = lambda name, value=1: None          # noqa: E731
    noop_gauge = lambda name, value: None          # noqa: E731
    noop_observe = lambda name, value: None        # noqa: E731
    noop_span = lambda name, **attrs: NULL_SPAN    # noqa: E731
    targets = [sys.modules[__name__]]
    package = sys.modules.get(__name__.rsplit(".", 1)[0])
    if package is not None:
        targets.append(package)
    saved = [(t, t.inc, t.gauge, t.observe, t.span) for t in targets]
    try:
        for t in targets:
            t.inc, t.gauge, t.observe, t.span = \
                noop_inc, noop_gauge, noop_observe, noop_span
        yield
    finally:
        for t, inc_, gauge_, observe_, span_ in saved:
            t.inc, t.gauge, t.observe, t.span = \
                inc_, gauge_, observe_, span_


# honour an environment opt-in so any entry point can be traced without
# code changes (workers forked from an enabled parent inherit the flag
# directly; this covers spawn-style and standalone processes)
if os.environ.get("REPRO_OBS", "").strip() not in ("", "0", "false"):
    enable()
