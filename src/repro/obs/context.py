"""Trace context: one identifier that follows a request everywhere.

The core obs layer (:mod:`repro.obs.core`) records *what ran* inside
one process; the provenance layer records *why*.  What neither could
answer before this module existed is "which request was that?" — the
serve daemon interleaves jobs across worker threads, the batch driver
fans reports out across forked processes, and the merged telemetry was
a pile of anonymous snapshots.

A :class:`TraceContext` is minted at every ingress — a ``repro serve``
HTTP request, a CLI invocation, a :func:`repro.batch.triage_many`
batch — and carries three ids:

* ``trace_id`` — 16 hex chars naming the whole request.  Every span
  event, provenance node, structured log line, telemetry snapshot and
  flight-recorder entry produced while the context is bound carries
  this id, so one grep joins them all;
* ``span_id`` — 8 hex chars naming this hop (the ingress, one worker's
  slice of a batch, one retry attempt);
* ``parent_id`` — the ``span_id`` of the hop that spawned this one
  (None at the root), so cross-process traces still form a tree.

Binding is **thread-local**: the serve daemon's worker threads each
carry their own context, so concurrent jobs never contaminate each
other's records.  Crossing the multiprocessing boundary is explicit
and cheap — :meth:`TraceContext.to_dict` / :meth:`TraceContext.
from_dict` move the three strings as plain data, and the batch driver
passes a :meth:`child` context to every worker attempt.

Interop: :meth:`to_traceparent` / :func:`from_traceparent` speak the
W3C ``traceparent`` header shape (``00-<trace>-<span>-01``), so an
upstream proxy's trace id flows through ``repro serve`` unchanged.

Everything here is allocation-light and engine-agnostic: no module in
this file imports the solver stack, and :func:`current` is a single
thread-local attribute read — cheap enough for the span-close path.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "TraceContext",
    "bind",
    "current",
    "current_trace_id",
    "from_traceparent",
    "new_trace",
]

_tls = threading.local()

#: hex-digit alphabet check for parsing foreign ids
_HEX = set("0123456789abcdef")


def _fresh_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One hop of one request: ``(trace_id, span_id, parent_id)``."""

    trace_id: str
    span_id: str
    parent_id: str | None = None
    origin: str = "unknown"       # ingress kind: serve | cli | batch | ...

    def child(self, origin: str | None = None) -> "TraceContext":
        """A new hop of the same trace: fresh ``span_id``, this hop as
        parent.  The batch driver mints one per report attempt; the
        serve daemon mints one per job run."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_fresh_id(4),
            parent_id=self.span_id,
            origin=origin or self.origin,
        )

    # ------------------------------------------------------------------
    # plain-data interchange (multiprocessing boundary, job registry)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "origin": self.origin,
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        return payload

    @classmethod
    def from_dict(cls, payload: dict | None) -> "TraceContext | None":
        """Rebuild a context shipped as plain data; None stays None and
        malformed payloads are dropped (a broken trace id must never
        break the computation it labels)."""
        if not payload or not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span_id = payload.get("span_id")
        if not isinstance(span_id, str) or not span_id:
            span_id = _fresh_id(4)
        parent = payload.get("parent_id")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent if isinstance(parent, str) else None,
            origin=str(payload.get("origin", "unknown")),
        )

    # ------------------------------------------------------------------
    # W3C traceparent interop
    # ------------------------------------------------------------------
    def to_traceparent(self) -> str:
        """Render as a W3C ``traceparent`` header value.

        The trace id is left-padded to the 32 hex chars the header
        requires (ours are 16); the span id likewise to 16.
        """
        return (f"00-{self.trace_id.rjust(32, '0')}-"
                f"{self.span_id.rjust(16, '0')}-01")


def from_traceparent(header: str | None,
                     origin: str = "serve") -> TraceContext | None:
    """Parse a W3C ``traceparent`` header into a context, or None.

    The caller's ids become this trace's identity: the returned
    context's ``trace_id`` is the header's (lower-cased, left-zeros
    stripped down to our 16-char width when longer), its ``parent_id``
    the header's span id, and a fresh ``span_id`` names our hop.
    Malformed headers return None — a bad header must never 500 a
    request.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 3:
        return None
    trace_id, parent = parts[1], parts[2]
    if not trace_id or set(trace_id) - _HEX or set(parent) - _HEX:
        return None
    if set(trace_id) == {"0"}:
        return None
    trimmed = trace_id.lstrip("0") or "0"
    if len(trimmed) <= 16:
        trace_id = trimmed.rjust(16, "0")
    # same width restoration for the parent span id: drop the header's
    # left-padding but keep genuine leading zeros of our 8-char ids
    parent = parent.lstrip("0")
    if parent and len(parent) <= 8:
        parent = parent.rjust(8, "0")
    return TraceContext(
        trace_id=trace_id,
        span_id=_fresh_id(4),
        parent_id=parent or None,
        origin=origin,
    )


# ---------------------------------------------------------------------------
# the ambient (thread-local) context
# ---------------------------------------------------------------------------

def new_trace(origin: str = "unknown") -> TraceContext:
    """Mint a fresh root context (a new ingress)."""
    return TraceContext(
        trace_id=_fresh_id(8),
        span_id=_fresh_id(4),
        parent_id=None,
        origin=origin,
    )


def current() -> TraceContext | None:
    """The context bound to this thread (None when unbound)."""
    return getattr(_tls, "ctx", None)


def current_trace_id() -> str | None:
    """Shorthand: the bound context's trace id, or None."""
    ctx = getattr(_tls, "ctx", None)
    return ctx.trace_id if ctx is not None else None


@contextmanager
def bind(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``ctx`` as this thread's ambient context for the block.

    Nests: the previous binding is restored on exit, even through
    exceptions.  Binding None clears the context for the block (used by
    tests and by code that must not inherit a caller's trace).
    """
    previous = getattr(_tls, "ctx", None)
    _tls.ctx = ctx
    try:
        yield ctx
    finally:
        _tls.ctx = previous


def _adopt(ctx: TraceContext | None) -> None:
    """Non-scoped install (forked worker processes, whose lifetime IS
    the scope).  Internal: prefer :func:`bind`."""
    _tls.ctx = ctx
