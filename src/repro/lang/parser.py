"""Recursive-descent parser for the source language.

Grammar::

    program   := "program" IDENT "(" params? ")" "{" stmt* "}"
    params    := param ("," param)*
    param     := "unsigned"? IDENT
    stmt      := "var" decls ";"
               | "skip" ";"
               | IDENT "=" expr ";"
               | "havoc" IDENT ["@assume" "(" pred ")"] ";"
               | "if" "(" pred ")" block ["else" block]
               | "while" "(" pred ")" block ["@post" "(" pred ")"]
               | "assert" "(" pred ")" ";"
    decls     := IDENT ["=" expr] ("," IDENT ["=" expr])*
    block     := "{" stmt* "}"
    pred      := orp ; orp := andp ("||" andp)* ; andp := notp ("&&" notp)*
    notp      := "!" notp | "(" pred ")" | cmp | "true" | "false"
    cmp       := expr ("<"|">"|"<="|">="|"=="|"!=") expr
    expr      := term (("+"|"-") term)* ; term := factor ("*" factor)*
    factor    := INT | IDENT | "-" factor | "(" expr ")"

The program must end with exactly one ``assert``, mirroring the paper's
``check(p)``.  Variables must be declared (``var``) or be parameters;
loops are labeled in source order starting from 1.
"""

from __future__ import annotations

from .ast import (
    Assert,
    Assign,
    BinOp,
    Block,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Havoc,
    If,
    Name,
    NotPred,
    Param,
    Pred,
    Program,
    Skip,
    Stmt,
    While,
)
from .diagnostics import ParseError, Span
from .lexer import Token, TokenKind, tokenize

_CMP_OPS = {"<", ">", "<=", ">=", "==", "!="}


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0
        self.loop_counter = 0
        self.declared: set[str] = set()
        self.params: list[Param] = []
        self.locals: list[str] = []
        self.prelude: list[Stmt] = []  # initializers from var decls

    # token plumbing -------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def at(self, kind: TokenKind, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind is kind and (text is None or token.text == text)

    def accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            want = text if text is not None else kind.name.lower()
            raise ParseError(
                f"expected {want!r}, found {token.text or 'end of input'!r}",
                token.span, self.source,
            )
        return self.advance()

    def error(self, message: str, span: Span) -> ParseError:
        return ParseError(message, span, self.source)

    # modules ----------------------------------------------------------------
    def module(self) -> "Module":
        from .procedures import Module, Proc

        procs: list[Proc] = []
        while self.at(TokenKind.KEYWORD, "proc"):
            procs.append(self.proc())
        program = self.program()
        return Module(tuple(procs), program)

    def proc(self) -> "Proc":
        from .procedures import Proc

        start = self.expect(TokenKind.KEYWORD, "proc").span
        name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.OP, "(")
        params: list[str] = []
        if not self.at(TokenKind.OP, ")"):
            params.append(self.expect(TokenKind.IDENT).text)
            while self.accept(TokenKind.OP, ","):
                params.append(self.expect(TokenKind.IDENT).text)
        self.expect(TokenKind.OP, ")")

        # procedures get their own scope
        saved_declared, saved_locals = self.declared, self.locals
        self.declared = set(params)
        self.locals = []
        self.expect(TokenKind.OP, "{")
        body: list[Stmt] = []
        while not self.at(TokenKind.KEYWORD, "return"):
            if self.at(TokenKind.OP, "}") or self.at(TokenKind.EOF):
                raise self.error(
                    "procedure must end with a return statement",
                    self.peek().span,
                )
            body.extend(self.statement())
        self.expect(TokenKind.KEYWORD, "return")
        result = self.expr()
        self.expect(TokenKind.OP, ";")
        end = self.expect(TokenKind.OP, "}").span
        proc_locals = tuple(self.locals)
        self.declared, self.locals = saved_declared, saved_locals
        return Proc(
            name=name,
            params=tuple(params),
            locals=proc_locals,
            body=Block(tuple(body), start.merge(end)),
            result=result,
            span=start.merge(end),
        )

    # program --------------------------------------------------------------
    def program(self) -> Program:
        start = self.expect(TokenKind.KEYWORD, "program").span
        name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.OP, "(")
        if not self.at(TokenKind.OP, ")"):
            self.params.append(self.param())
            while self.accept(TokenKind.OP, ","):
                self.params.append(self.param())
        self.expect(TokenKind.OP, ")")
        self.declared = {p.name for p in self.params}
        body_block = self.block()
        end = self.expect(TokenKind.EOF).span

        statements = list(body_block.body)
        if not statements or not isinstance(statements[-1], Assert):
            raise self.error(
                "program must end with a single assert(...) — the paper's "
                "check(p)",
                body_block.span,
            )
        check = statements.pop()
        for stmt in statements:
            for sub in stmt.walk():
                if isinstance(sub, Assert):
                    raise self.error(
                        "assert(...) is only allowed as the final statement",
                        sub.span,
                    )
        assert isinstance(check, Assert)
        return Program(
            name=name,
            params=tuple(self.params),
            locals=tuple(self.locals),
            body=Block(tuple(statements), body_block.span),
            check=check,
            span=start.merge(end),
            source=self.source,
        )

    def param(self) -> Param:
        unsigned = self.accept(TokenKind.KEYWORD, "unsigned") is not None
        token = self.expect(TokenKind.IDENT)
        if token.text in {p.name for p in self.params}:
            raise self.error(f"duplicate parameter {token.text!r}", token.span)
        return Param(token.text, unsigned, token.span)

    # statements -----------------------------------------------------------
    def block(self) -> Block:
        start = self.expect(TokenKind.OP, "{").span
        body: list[Stmt] = []
        while not self.at(TokenKind.OP, "}"):
            if self.at(TokenKind.EOF):
                raise self.error("unterminated block", self.peek().span)
            body.extend(self.statement())
        end = self.expect(TokenKind.OP, "}").span
        return Block(tuple(body), start.merge(end))

    def statement(self) -> list[Stmt]:
        token = self.peek()
        if token.kind is TokenKind.KEYWORD:
            if token.text == "var":
                return self.var_decl()
            if token.text == "skip":
                self.advance()
                self.expect(TokenKind.OP, ";")
                return [Skip(token.span)]
            if token.text == "havoc":
                return [self.havoc()]
            if token.text == "if":
                return [self.if_stmt()]
            if token.text == "while":
                return [self.while_stmt()]
            if token.text == "assert":
                return [self.assert_stmt()]
            raise self.error(f"unexpected keyword {token.text!r}", token.span)
        if token.kind is TokenKind.IDENT:
            return [self.assignment()]
        raise self.error(
            f"expected a statement, found {token.text!r}", token.span
        )

    def var_decl(self) -> list[Stmt]:
        self.expect(TokenKind.KEYWORD, "var")
        statements: list[Stmt] = []
        while True:
            token = self.expect(TokenKind.IDENT)
            if token.text in self.declared:
                raise self.error(
                    f"variable {token.text!r} already declared", token.span
                )
            self.declared.add(token.text)
            self.locals.append(token.text)
            if self.accept(TokenKind.OP, "="):
                value = self.expr()
                statements.append(Assign(token.text, value, token.span))
            if not self.accept(TokenKind.OP, ","):
                break
        self.expect(TokenKind.OP, ";")
        return statements

    def assignment(self) -> Stmt:
        token = self.expect(TokenKind.IDENT)
        self.check_declared(token)
        self.expect(TokenKind.OP, "=")
        if self.accept(TokenKind.KEYWORD, "call"):
            from .procedures import CallStmt

            proc_name = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.OP, "(")
            args: list = []
            if not self.at(TokenKind.OP, ")"):
                args.append(self.expr())
                while self.accept(TokenKind.OP, ","):
                    args.append(self.expr())
            self.expect(TokenKind.OP, ")")
            self.expect(TokenKind.OP, ";")
            return CallStmt(token.text, proc_name, tuple(args), token.span)
        value = self.expr()
        self.expect(TokenKind.OP, ";")
        return Assign(token.text, value, token.span)

    def havoc(self) -> Stmt:
        start = self.expect(TokenKind.KEYWORD, "havoc").span
        token = self.expect(TokenKind.IDENT)
        self.check_declared(token)
        assume: Pred | None = None
        if self.accept(TokenKind.ANNOT, "@assume"):
            self.expect(TokenKind.OP, "(")
            assume = self.pred()
            self.expect(TokenKind.OP, ")")
        self.expect(TokenKind.OP, ";")
        return Havoc(token.text, assume, start.merge(token.span))

    def if_stmt(self) -> Stmt:
        start = self.expect(TokenKind.KEYWORD, "if").span
        self.expect(TokenKind.OP, "(")
        cond = self.pred()
        self.expect(TokenKind.OP, ")")
        then_branch = self.block()
        if self.accept(TokenKind.KEYWORD, "else"):
            else_branch = self.block()
        else:
            else_branch = Block((), then_branch.span)
        return If(cond, then_branch, else_branch,
                  start.merge(else_branch.span))

    def while_stmt(self) -> Stmt:
        start = self.expect(TokenKind.KEYWORD, "while").span
        self.loop_counter += 1
        label = self.loop_counter  # source order, before the nested body
        self.expect(TokenKind.OP, "(")
        cond = self.pred()
        self.expect(TokenKind.OP, ")")
        body = self.block()
        post: Pred | None = None
        if self.accept(TokenKind.ANNOT, "@post"):
            self.expect(TokenKind.OP, "(")
            post = self.pred()
            self.expect(TokenKind.OP, ")")
        return While(cond, body, label, post, start.merge(body.span))

    def assert_stmt(self) -> Stmt:
        start = self.expect(TokenKind.KEYWORD, "assert").span
        self.expect(TokenKind.OP, "(")
        pred = self.pred()
        end = self.expect(TokenKind.OP, ")").span
        self.expect(TokenKind.OP, ";")
        return Assert(pred, start.merge(end))

    def check_declared(self, token: Token) -> None:
        if token.text not in self.declared:
            raise self.error(
                f"variable {token.text!r} is not declared", token.span
            )

    # predicates -----------------------------------------------------------
    def pred(self) -> Pred:
        left = self.and_pred()
        parts = [left]
        while self.accept(TokenKind.OP, "||"):
            parts.append(self.and_pred())
        if len(parts) == 1:
            return left
        return BoolOp("||", tuple(parts), parts[0].span.merge(parts[-1].span))

    def and_pred(self) -> Pred:
        left = self.not_pred()
        parts = [left]
        while self.accept(TokenKind.OP, "&&"):
            parts.append(self.not_pred())
        if len(parts) == 1:
            return left
        return BoolOp("&&", tuple(parts), parts[0].span.merge(parts[-1].span))

    def not_pred(self) -> Pred:
        token = self.peek()
        if self.accept(TokenKind.OP, "!"):
            inner = self.not_pred()
            return NotPred(inner, token.span.merge(inner.span))
        if self.accept(TokenKind.KEYWORD, "true"):
            return BoolConst(True, token.span)
        if self.accept(TokenKind.KEYWORD, "false"):
            return BoolConst(False, token.span)
        if self.at(TokenKind.OP, "("):
            # parenthesized predicate or parenthesized arithmetic expr
            save = self.index
            try:
                self.advance()
                inner = self.pred()
                self.expect(TokenKind.OP, ")")
                if self.peek().text in _CMP_OPS:
                    raise self.error("arithmetic context", self.peek().span)
                return inner
            except ParseError:
                self.index = save
                return self.comparison()
        return self.comparison()

    def comparison(self) -> Pred:
        left = self.expr()
        token = self.peek()
        if token.text not in _CMP_OPS:
            raise self.error(
                f"expected comparison operator, found {token.text!r}",
                token.span,
            )
        self.advance()
        right = self.expr()
        return Cmp(token.text, left, right, left.span.merge(right.span))

    # expressions ----------------------------------------------------------
    def expr(self) -> Expr:
        left = self.term()
        while True:
            token = self.peek()
            if token.text in ("+", "-") and token.kind is TokenKind.OP:
                self.advance()
                right = self.term()
                left = BinOp(token.text, left, right,
                             left.span.merge(right.span))
            else:
                return left

    def term(self) -> Expr:
        left = self.factor()
        while self.at(TokenKind.OP, "*"):
            self.advance()
            right = self.factor()
            left = BinOp("*", left, right, left.span.merge(right.span))
        return left

    def factor(self) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.INT:
            self.advance()
            return Const(int(token.text), token.span)
        if token.kind is TokenKind.IDENT:
            self.advance()
            if token.text not in self.declared:
                raise self.error(
                    f"variable {token.text!r} is not declared", token.span
                )
            return Name(token.text, token.span)
        if self.accept(TokenKind.OP, "-"):
            inner = self.factor()
            return BinOp("-", Const(0, token.span), inner,
                         token.span.merge(inner.span))
        if self.accept(TokenKind.OP, "("):
            inner = self.expr()
            self.expect(TokenKind.OP, ")")
            return inner
        raise self.error(
            f"expected an expression, found {token.text!r}", token.span
        )


def parse_program(source: str) -> Program:
    """Parse a program (optionally preceded by ``proc`` definitions,
    which are inlined away) from its concrete syntax."""
    from .procedures import inline_module

    module = _Parser(source).module()
    return inline_module(module)


def parse_module(source: str):
    """Parse without inlining; returns a :class:`repro.lang.procedures
    .Module` (useful for tooling that wants the call structure)."""
    return _Parser(source).module()
