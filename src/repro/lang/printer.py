"""Canonical source rendering for the paper's language.

:func:`render_program` is the inverse of :func:`repro.lang.parse_program`
up to structural equality: ``parse_program(render_program(p)) == p`` for
every well-formed :class:`~repro.lang.ast.Program` (AST spans are
``compare=False``, so re-parsed positions do not matter).  That property
is what makes patch splicing (:mod:`repro.repair`) sound end-to-end — a
spliced AST can be rendered, re-parsed, re-annotated and re-analyzed by
the exact front-end the original program went through, and the repair
tests assert the round trip under hypothesis.

The rendering is canonical, not source-preserving: declarations are
hoisted into one ``var`` line, initializer sugar is expanded, operator
precedence decides parentheses.  Diffs produced by the repair layer
therefore compare two *canonical* renderings, so an edit shows up as
exactly the lines it changed.

Limitations, by design: ``Const`` nodes must be non-negative (the
grammar has no negative literals — unary minus parses as ``0 - e``) and
bare ``Block``/``Assert`` statements cannot appear inside a body (the
grammar cannot express them there).  Both raise :class:`ValueError`.
"""

from __future__ import annotations

from .ast import (
    Assert,
    Assign,
    BinOp,
    Block,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Havoc,
    If,
    Name,
    NotPred,
    Pred,
    Program,
    Skip,
    Stmt,
    While,
)

__all__ = ["render_expr", "render_pred", "render_program", "render_stmt"]

_INDENT = "    "

# precedence tiers of the expression grammar: additive < multiplicative
_ADD, _MUL = 1, 2


def render_expr(expr: Expr, *, min_prec: int = 0) -> str:
    """Render an integer expression with minimal parentheses."""
    if isinstance(expr, Name):
        return expr.name
    if isinstance(expr, Const):
        if expr.value < 0:
            raise ValueError(
                f"cannot render negative literal {expr.value} "
                "(the grammar has no negative constants; "
                "use BinOp('-', Const(0), ...) instead)"
            )
        return str(expr.value)
    if isinstance(expr, BinOp):
        prec = _MUL if expr.op == "*" else _ADD
        left = render_expr(expr.left, min_prec=prec)
        # the parser folds left-associatively, so the right operand of
        # an equal-precedence chain needs parentheses to survive
        right = render_expr(expr.right, min_prec=prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < min_prec:
            return f"({text})"
        return text
    raise ValueError(f"cannot render expression {expr!r}")


def render_pred(pred: Pred) -> str:
    """Render a predicate; nested boolean structure is parenthesized so
    the parse tree (not just the truth table) survives the round trip."""
    if isinstance(pred, BoolConst):
        return "true" if pred.value else "false"
    if isinstance(pred, Cmp):
        return f"{render_expr(pred.left)} {pred.op} {render_expr(pred.right)}"
    if isinstance(pred, NotPred):
        return f"!({render_pred(pred.arg)})"
    if isinstance(pred, BoolOp):
        sep = f" {pred.op} "
        parts = [
            f"({render_pred(part)})" if isinstance(part, BoolOp)
            else render_pred(part)
            for part in pred.parts
        ]
        return sep.join(parts)
    raise ValueError(f"cannot render predicate {pred!r}")


def render_stmt(stmt: Stmt, *, indent: int = 0) -> list[str]:
    """Render one statement as indented source lines."""
    pad = _INDENT * indent
    if isinstance(stmt, Skip):
        return [f"{pad}skip;"]
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.target} = {render_expr(stmt.value)};"]
    if isinstance(stmt, Havoc):
        if stmt.assume is None:
            return [f"{pad}havoc {stmt.target};"]
        return [f"{pad}havoc {stmt.target} "
                f"@assume({render_pred(stmt.assume)});"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({render_pred(stmt.cond)}) {{"]
        lines.extend(_render_body(stmt.then_branch, indent + 1))
        if stmt.else_branch.body:
            lines.append(f"{pad}}} else {{")
            lines.extend(_render_body(stmt.else_branch, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({render_pred(stmt.cond)}) {{"]
        lines.extend(_render_body(stmt.body, indent + 1))
        close = f"{pad}}}"
        if stmt.post is not None:
            close += f" @post({render_pred(stmt.post)})"
        lines.append(close)
        return lines
    if isinstance(stmt, Assert):
        return [f"{pad}assert({render_pred(stmt.pred)});"]
    raise ValueError(
        f"cannot render a bare {type(stmt).__name__} statement "
        "(the grammar has no syntax for it here)"
    )


def _render_body(block: Block, indent: int) -> list[str]:
    lines: list[str] = []
    for stmt in block.body:
        lines.extend(render_stmt(stmt, indent=indent))
    return lines


def render_program(program: Program) -> str:
    """Render a program as canonical, re-parseable source text."""
    params = ", ".join(
        f"unsigned {p.name}" if p.unsigned else p.name
        for p in program.params
    )
    lines = [f"program {program.name}({params}) {{"]
    if program.locals:
        lines.append(f"{_INDENT}var {', '.join(program.locals)};")
    lines.extend(_render_body(program.body, 1))
    lines.extend(render_stmt(program.check, indent=1))
    lines.append("}")
    return "\n".join(lines) + "\n"
