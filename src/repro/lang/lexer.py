"""Lexer for the paper's source language (C-like concrete syntax)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from .diagnostics import ParseError, Span


class TokenKind(Enum):
    IDENT = auto()
    INT = auto()
    KEYWORD = auto()
    OP = auto()
    ANNOT = auto()     # @post, @assume, @invariant
    EOF = auto()


KEYWORDS = {
    "program", "var", "if", "else", "while", "assert", "skip",
    "havoc", "unsigned", "true", "false", "proc", "return", "call",
}

ANNOTATIONS = {"@post", "@assume", "@invariant"}

_OPERATORS = [
    # longest first
    "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "(", ")", "{", "}", ";", ",", "=", "<", ">", "!",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize a program, handling // and /* */ comments."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)

    def span(start: int, end: int) -> Span:
        return Span(start, end, line, start - line_start + 1)

    while pos < n:
        ch = source[pos]
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            while pos < n and source[pos] != "\n":
                pos += 1
            continue
        if source.startswith("/*", pos):
            close = source.find("*/", pos + 2)
            if close == -1:
                raise ParseError("unterminated comment",
                                 span(pos, pos + 2), source)
            line += source.count("\n", pos, close)
            newline = source.rfind("\n", pos, close)
            if newline != -1:
                line_start = newline + 1
            pos = close + 2
            continue
        if ch.isdigit():
            start = pos
            while pos < n and source[pos].isdigit():
                pos += 1
            tokens.append(Token(TokenKind.INT, source[start:pos],
                                span(start, pos)))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, span(start, pos)))
            continue
        if ch == "@":
            start = pos
            pos += 1
            while pos < n and source[pos].isalpha():
                pos += 1
            text = source[start:pos]
            if text not in ANNOTATIONS:
                raise ParseError(f"unknown annotation {text!r}",
                                 span(start, pos), source)
            tokens.append(Token(TokenKind.ANNOT, text, span(start, pos)))
            continue
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token(TokenKind.OP, op,
                                    span(pos, pos + len(op))))
                pos += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}",
                             span(pos, pos + 1), source)

    tokens.append(Token(TokenKind.EOF, "", span(n, n)))
    return tokens
