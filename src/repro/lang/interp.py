"""Concrete interpreter implementing the operational semantics (Figure 1).

The interpreter serves three roles in the reproduction:

* differential testing — the symbolic analysis must agree with it exactly
  on loop-free programs;
* ground truth for the benchmark suite — a program "is buggy" iff some
  execution makes the final check false (Figure 1's semantics);
* the sampling oracle (Section 8's future-work direction) runs it to
  answer failure-witness queries automatically.

``havoc`` statements make execution nondeterministic; a
:class:`HavocPolicy` resolves each havoc, by default sampling values that
satisfy the ``@assume`` predicate (via the SMT stack when sampling fails).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .ast import (
    Assert,
    Assign,
    BinOp,
    Block,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Havoc,
    If,
    Name,
    NotPred,
    Pred,
    Program,
    Skip,
    Stmt,
    While,
)
from .diagnostics import AnalysisError


class OutOfFuel(RuntimeError):
    """Raised when execution exceeds the step budget (possible divergence)."""


@dataclass
class ExecutionResult:
    """Outcome of one concrete execution.

    ``site_values`` records, keyed by source offset, the last value
    produced at instrumented sites (havocs and non-linear products) so
    that oracles can evaluate abstraction variables against this run.
    ``loop_exit_envs`` records the environment each time a loop exits.
    """

    ok: bool                       # did check(p) evaluate to true?
    env: dict[str, int]            # final variable environment
    steps: int
    havoc_values: list[int] = field(default_factory=list)
    loop_exit_envs: dict[int, list[dict[str, int]]] = field(
        default_factory=dict
    )
    site_values: dict[int, int] = field(default_factory=dict)


class HavocPolicy:
    """Resolves ``havoc x @assume(p)`` to concrete values.

    Tries random sampling against the assumption first; falls back to the
    SMT solver for assumptions random probing cannot hit.
    """

    def __init__(self, rng: random.Random | None = None,
                 *, low: int = -64, high: int = 64, attempts: int = 64):
        self._rng = rng or random.Random(0)
        self._low = low
        self._high = high
        self._attempts = attempts

    def resolve(self, stmt: Havoc, env: Mapping[str, int]) -> int:
        if stmt.assume is None:
            return self._rng.randint(self._low, self._high)
        for _ in range(self._attempts):
            candidate = self._rng.randint(self._low, self._high)
            trial = dict(env)
            trial[stmt.target] = candidate
            if eval_pred(stmt.assume, trial):
                return candidate
        return self._solve(stmt, env)

    def _solve(self, stmt: Havoc, env: Mapping[str, int]) -> int:
        from ..analysis.lowering import lower_pred_concrete  # lazy: layering
        from ..logic.terms import Var
        from ..smt import SmtSolver

        assert stmt.assume is not None
        phi = lower_pred_concrete(stmt.assume, env, free={stmt.target})
        model = SmtSolver().get_model(phi)
        if model is None:
            raise AnalysisError(
                f"havoc assumption is unsatisfiable in this state: "
                f"{stmt.assume}",
                stmt.span,
            )
        return model.value(Var(stmt.target))


class FixedHavocPolicy(HavocPolicy):
    """Replays a fixed sequence of havoc values (for deterministic tests).

    Values that violate the assumption are replaced via the base policy.
    """

    def __init__(self, values: Sequence[int]):
        super().__init__(random.Random(0))
        self._values = list(values)
        self._index = 0

    def resolve(self, stmt: Havoc, env: Mapping[str, int]) -> int:
        if self._index < len(self._values):
            candidate = self._values[self._index]
            self._index += 1
            if stmt.assume is None:
                return candidate
            trial = dict(env)
            trial[stmt.target] = candidate
            if eval_pred(stmt.assume, trial):
                return candidate
        return super().resolve(stmt, env)


def eval_expr(expr: Expr, env: Mapping[str, int],
              recorder: dict[int, int] | None = None) -> int:
    """Evaluate an expression (Figure 1's expression judgments).

    When ``recorder`` is given, non-linear products record their value
    keyed by the source offset of the ``*`` expression.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Name):
        try:
            return env[expr.name]
        except KeyError:
            raise AnalysisError(f"unbound variable {expr.name!r}", expr.span)
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, env, recorder)
        right = eval_expr(expr.right, env, recorder)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            value = left * right
            if recorder is not None and not (
                isinstance(expr.left, Const) or isinstance(expr.right, Const)
            ):
                recorder[expr.span.start] = value
            return value
        raise AnalysisError(f"unknown operator {expr.op!r}", expr.span)
    raise TypeError(f"unexpected expression node {expr!r}")


_CMP = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def eval_pred(pred: Pred, env: Mapping[str, int],
              recorder: dict[int, int] | None = None) -> bool:
    """Evaluate a predicate (Figure 1's predicate judgments)."""
    if isinstance(pred, BoolConst):
        return pred.value
    if isinstance(pred, Cmp):
        return _CMP[pred.op](eval_expr(pred.left, env, recorder),
                             eval_expr(pred.right, env, recorder))
    if isinstance(pred, BoolOp):
        if pred.op == "&&":
            return all(eval_pred(p, env, recorder) for p in pred.parts)
        return any(eval_pred(p, env, recorder) for p in pred.parts)
    if isinstance(pred, NotPred):
        return not eval_pred(pred.arg, env, recorder)
    raise TypeError(f"unexpected predicate node {pred!r}")


class Interpreter:
    """Executes programs under the Figure 1 semantics."""

    def __init__(self, *, fuel: int = 200_000,
                 havoc_policy: HavocPolicy | None = None):
        self._fuel = fuel
        self._policy = havoc_policy or HavocPolicy()

    def run(self, program: Program,
            inputs: Mapping[str, int] | Sequence[int]) -> ExecutionResult:
        """Run ``program`` on ``inputs``; returns the execution outcome.

        ``inputs`` is either a mapping from parameter names to values or a
        positional sequence.  Unsigned parameters reject negative values.
        """
        env = self._initial_env(program, inputs)
        result = ExecutionResult(ok=True, env=env, steps=0)
        self._exec_block(program.body, env, result)
        result.ok = eval_pred(program.check.pred, env, result.site_values)
        return result

    # ------------------------------------------------------------------
    def _initial_env(self, program: Program,
                     inputs: Mapping[str, int] | Sequence[int]
                     ) -> dict[str, int]:
        if not isinstance(inputs, Mapping):
            values = list(inputs)
            if len(values) != len(program.params):
                raise ValueError(
                    f"{program.name} expects {len(program.params)} inputs, "
                    f"got {len(values)}"
                )
            inputs = dict(zip(program.param_names(), values))
        env: dict[str, int] = {}
        for param in program.params:
            if param.name not in inputs:
                raise ValueError(f"missing input {param.name!r}")
            value = int(inputs[param.name])
            if param.unsigned and value < 0:
                raise ValueError(
                    f"unsigned parameter {param.name!r} got {value}"
                )
            env[param.name] = value
        for name in program.locals:
            env[name] = 0  # concrete semantics: locals start at 0
        return env

    def _exec_block(self, block: Block, env: dict[str, int],
                    result: ExecutionResult) -> None:
        for stmt in block.body:
            self._exec(stmt, env, result)

    def _exec(self, stmt: Stmt, env: dict[str, int],
              result: ExecutionResult) -> None:
        result.steps += 1
        if result.steps > self._fuel:
            raise OutOfFuel(
                f"execution exceeded {self._fuel} steps at {stmt.span}"
            )
        if isinstance(stmt, Skip):
            return
        if isinstance(stmt, Assign):
            env[stmt.target] = eval_expr(stmt.value, env, result.site_values)
            return
        if isinstance(stmt, Havoc):
            value = self._policy.resolve(stmt, env)
            env[stmt.target] = value
            result.havoc_values.append(value)
            result.site_values[stmt.span.start] = value
            return
        if isinstance(stmt, Block):
            self._exec_block(stmt, env, result)
            return
        if isinstance(stmt, If):
            taken = eval_pred(stmt.cond, env, result.site_values)
            branch = stmt.then_branch if taken else stmt.else_branch
            self._exec_block(branch, env, result)
            return
        if isinstance(stmt, While):
            while eval_pred(stmt.cond, env, result.site_values):
                result.steps += 1
                if result.steps > self._fuel:
                    raise OutOfFuel(
                        f"loop at {stmt.span} exceeded {self._fuel} steps"
                    )
                self._exec_block(stmt.body, env, result)
            result.loop_exit_envs.setdefault(stmt.label, []).append(dict(env))
            return
        if isinstance(stmt, Assert):
            raise AnalysisError(
                "assert may only appear as the final check", stmt.span
            )
        raise TypeError(f"unexpected statement node {stmt!r}")


def run_program(program: Program,
                inputs: Mapping[str, int] | Sequence[int],
                **kwargs) -> ExecutionResult:
    """Convenience wrapper around :class:`Interpreter`."""
    return Interpreter(**kwargs).run(program, inputs)
