"""Source positions and compiler-style diagnostics.

Every token and AST node carries a :class:`Span`; parse and analysis
errors render the offending line with a caret marker, the way a
conventional compiler frontend reports problems.  Spans also let the
diagnosis engine phrase queries as "... after the loop at line 5".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """A half-open byte range in a source file, with line/column info."""

    start: int
    end: int
    line: int        # 1-based line of `start`
    column: int      # 1-based column of `start`

    @staticmethod
    def point(offset: int, line: int, column: int) -> "Span":
        return Span(offset, offset, line, column)

    def merge(self, other: "Span") -> "Span":
        if other.start < self.start:
            return other.merge(self)
        return Span(self.start, max(self.end, other.end),
                    self.line, self.column)

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


DUMMY_SPAN = Span(0, 0, 1, 1)


class SourceError(Exception):
    """An error anchored to a source location, rendered with context."""

    def __init__(self, message: str, span: Span, source: str | None = None):
        self.message = message
        self.span = span
        self.source = source
        super().__init__(self.render())

    def render(self) -> str:
        header = f"{self.message} ({self.span})"
        if self.source is None:
            return header
        lines = self.source.splitlines()
        if not 1 <= self.span.line <= len(lines):
            return header
        line_text = lines[self.span.line - 1]
        caret_width = max(1, min(self.span.end - self.span.start,
                                 len(line_text) - self.span.column + 1))
        caret = " " * (self.span.column - 1) + "^" * caret_width
        return f"{header}\n  {line_text}\n  {caret}"


class ParseError(SourceError):
    """Raised by the lexer/parser on malformed programs."""


class AnalysisError(SourceError):
    """Raised by static analysis passes on unsupported or ill-formed input."""
