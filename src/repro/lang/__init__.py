"""The paper's source language: AST, parser, diagnostics, interpreter."""

from .ast import (
    Assert,
    Assign,
    BinOp,
    Block,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Havoc,
    If,
    Name,
    NotPred,
    Param,
    Pred,
    Program,
    Skip,
    Stmt,
    While,
)
from .diagnostics import AnalysisError, ParseError, SourceError, Span
from .interp import (
    ExecutionResult,
    FixedHavocPolicy,
    HavocPolicy,
    Interpreter,
    OutOfFuel,
    eval_expr,
    eval_pred,
    run_program,
)
from .parser import parse_module, parse_program
from .printer import render_expr, render_pred, render_program, render_stmt
from .procedures import CallStmt, Module, Proc, inline_module

__all__ = [
    "Assert", "Assign", "BinOp", "Block", "BoolConst", "BoolOp", "Cmp",
    "Const", "Expr", "Havoc", "If", "Name", "NotPred", "Param", "Pred",
    "Program", "Skip", "Stmt", "While",
    "AnalysisError", "ParseError", "SourceError", "Span",
    "ExecutionResult", "FixedHavocPolicy", "HavocPolicy", "Interpreter",
    "OutOfFuel", "eval_expr", "eval_pred", "run_program",
    "parse_module", "parse_program",
    "render_expr", "render_pred", "render_program", "render_stmt",
    "CallStmt", "Module", "Proc", "inline_module",
]
