"""Abstract syntax for the paper's source language (Section 2), extended
with the Section 5 features exercised by the benchmark suite:

* general multiplication ``e1 * e2`` (non-linear products are abstracted
  by the analysis, as the paper's implementation does);
* ``havoc x [@assume(p)]`` — models calls to unanalyzed library functions
  whose result is unknown except for an optional postcondition;
* ``unsigned`` parameters — inputs known to be non-negative (the paper's
  running example relies on ``unsigned int n``).

Loops carry an optional ``@post`` annotation: the sound postcondition
produced by an external static analysis (Section 2's ``@p'``), or by the
interval/zone analyses of :mod:`repro.abstract`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .diagnostics import DUMMY_SPAN, Span


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class of integer expressions."""

    span: Span

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def variables(self) -> set[str]:
        return {n.name for n in self.walk() if isinstance(n, Name)}


@dataclass(frozen=True)
class Name(Expr):
    name: str
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    value: int
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # '+', '-', '*'
    left: Expr
    right: Expr
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ---------------------------------------------------------------------------
# predicates
# ---------------------------------------------------------------------------

class Pred:
    """Base class of boolean predicates."""

    span: Span

    def children(self) -> tuple["Pred | Expr", ...]:
        return ()

    def variables(self) -> set[str]:
        result: set[str] = set()
        stack: list[Pred | Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Name):
                result.add(node.name)
            stack.extend(node.children())
        return result


@dataclass(frozen=True)
class BoolConst(Pred):
    value: bool
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Cmp(Pred):
    op: str  # '<', '>', '<=', '>=', '==', '!='
    left: Expr
    right: Expr
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def children(self) -> tuple[Pred | Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BoolOp(Pred):
    op: str  # '&&' or '||'
    parts: tuple[Pred, ...]
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def children(self) -> tuple[Pred | Expr, ...]:
        return self.parts

    def __str__(self) -> str:
        sep = f" {self.op} "
        return "(" + sep.join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class NotPred(Pred):
    arg: Pred
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def children(self) -> tuple[Pred | Expr, ...]:
        return (self.arg,)

    def __str__(self) -> str:
        return f"!({self.arg})"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class of statements."""

    span: Span

    def substatements(self) -> tuple["Stmt", ...]:
        return ()

    def walk(self) -> Iterator["Stmt"]:
        yield self
        for sub in self.substatements():
            yield from sub.walk()


@dataclass(frozen=True)
class Skip(Stmt):
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass(frozen=True)
class Assign(Stmt):
    target: str
    value: Expr
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass(frozen=True)
class Havoc(Stmt):
    """``havoc x [@assume(p)]`` — x receives an arbitrary value satisfying
    the optional assumption (modeling an unanalyzed library call)."""

    target: str
    assume: Pred | None = None
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass(frozen=True)
class Block(Stmt):
    body: tuple[Stmt, ...]
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def substatements(self) -> tuple[Stmt, ...]:
        return self.body


@dataclass(frozen=True)
class If(Stmt):
    cond: Pred
    then_branch: Block
    else_branch: Block
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def substatements(self) -> tuple[Stmt, ...]:
        return (self.then_branch, self.else_branch)


@dataclass(frozen=True)
class While(Stmt):
    """A while loop with a unique label and optional sound postcondition.

    ``post`` is the paper's ``@p'`` annotation: a predicate guaranteed to
    hold immediately after the loop, typically produced by an abstract
    interpreter.  The analysis constrains the loop's abstraction variables
    with it.
    """

    cond: Pred
    body: Block
    label: int
    post: Pred | None = None
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def substatements(self) -> tuple[Stmt, ...]:
        return (self.body,)

    def modified_vars(self) -> set[str]:
        """Program variables assigned (or havocked) anywhere in the body."""
        result: set[str] = set()
        for stmt in self.body.walk():
            if isinstance(stmt, Assign):
                result.add(stmt.target)
            elif isinstance(stmt, Havoc):
                result.add(stmt.target)
        return result


@dataclass(frozen=True)
class Assert(Stmt):
    """The program's ``check(p)``: the property under verification."""

    pred: Pred
    span: Span = field(default=DUMMY_SPAN, compare=False)


# ---------------------------------------------------------------------------
# programs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Param:
    name: str
    unsigned: bool = False
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass(frozen=True)
class Program:
    """``lambda a1..ak. (let v1..vn in (s; check(p)))``.

    ``body`` excludes the final assert, which is stored separately as
    ``check`` (mirroring the paper's program form).  Local variables are
    implicitly 0-initialized per the concrete semantics; ``var`` decls
    with initializers are sugar for declaration plus assignment.
    """

    name: str
    params: tuple[Param, ...]
    locals: tuple[str, ...]
    body: Block
    check: Assert
    span: Span = field(default=DUMMY_SPAN, compare=False)
    source: str | None = field(default=None, compare=False)

    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def loops(self) -> list[While]:
        return [s for s in self.body.walk() if isinstance(s, While)]

    def loop_by_label(self, label: int) -> While:
        for loop in self.loops():
            if loop.label == label:
                return loop
        raise KeyError(f"no loop labeled {label}")
