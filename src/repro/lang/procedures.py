"""Procedures and call inlining.

The paper's implementation is interprocedural (summary-based, in
Compass); the formal language omits calls as "orthogonal".  This module
adds the mid-point that keeps the formalism intact: programs may define
helper procedures, and calls are *inlined* before analysis, so the
analysis and the interpreter only ever see the core language.

Syntax::

    proc clamp(lo, hi, v) {
      var r;
      r = v;
      if (r < lo) { r = lo; }
      if (r > hi) { r = hi; }
      return r;
    }

    program main(x) {
      var y;
      y = call clamp(0, 10, x);
      assert(y >= 0 && y <= 10);
    }

Calls appear only as whole assignments (``target = call f(args);``).
Procedures may call other procedures; (mutual) recursion is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import (
    Assign,
    BinOp,
    Block,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Havoc,
    If,
    Name,
    NotPred,
    Pred,
    Program,
    Skip,
    Stmt,
    While,
)
from .diagnostics import DUMMY_SPAN, ParseError, Span


@dataclass(frozen=True)
class CallStmt(Stmt):
    """``target = call proc(args);`` — eliminated by inlining."""

    target: str
    proc: str
    args: tuple[Expr, ...]
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass(frozen=True)
class Proc:
    """A helper procedure with a single trailing ``return``."""

    name: str
    params: tuple[str, ...]
    locals: tuple[str, ...]
    body: Block
    result: Expr
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass(frozen=True)
class Module:
    """Zero or more procedures plus the main program."""

    procs: tuple[Proc, ...]
    program: Program

    def proc_by_name(self, name: str) -> Proc:
        for proc in self.procs:
            if proc.name == name:
                return proc
        raise KeyError(name)


class _Inliner:
    def __init__(self, module: Module, source: str | None):
        self._module = module
        self._source = source
        self._counter = 0
        self._extra_locals: list[str] = []
        labels = [
            s.label
            for s in module.program.body.walk()
            if isinstance(s, While)
        ]
        for proc in module.procs:
            labels.extend(
                s.label for s in proc.body.walk() if isinstance(s, While)
            )
        self._next_label = max(labels, default=0)

    def inline_program(self) -> Program:
        program = self._module.program
        body = self._inline_block(program.body, frozenset())
        return Program(
            name=program.name,
            params=program.params,
            locals=program.locals + tuple(self._extra_locals),
            body=body,
            check=program.check,
            span=program.span,
            source=program.source,
        )

    # ------------------------------------------------------------------
    def _inline_block(self, block: Block,
                      stack: frozenset[str]) -> Block:
        statements: list[Stmt] = []
        for stmt in block.body:
            statements.extend(self._inline_stmt(stmt, stack))
        return Block(tuple(statements), block.span)

    def _inline_stmt(self, stmt: Stmt,
                     stack: frozenset[str]) -> list[Stmt]:
        if isinstance(stmt, CallStmt):
            return self._expand_call(stmt, stack)
        if isinstance(stmt, If):
            return [If(
                stmt.cond,
                self._inline_block(stmt.then_branch, stack),
                self._inline_block(stmt.else_branch, stack),
                stmt.span,
            )]
        if isinstance(stmt, While):
            return [While(
                stmt.cond,
                self._inline_block(stmt.body, stack),
                stmt.label,
                stmt.post,
                stmt.span,
            )]
        if isinstance(stmt, Block):
            return [self._inline_block(stmt, stack)]
        return [stmt]

    def _expand_call(self, stmt: CallStmt,
                     stack: frozenset[str]) -> list[Stmt]:
        try:
            proc = self._module.proc_by_name(stmt.proc)
        except KeyError:
            raise ParseError(
                f"call to undefined procedure {stmt.proc!r}",
                stmt.span, self._source,
            )
        if proc.name in stack:
            raise ParseError(
                f"recursive call to {proc.name!r} (recursion is not "
                f"supported; inline bounded iterations manually)",
                stmt.span, self._source,
            )
        if len(stmt.args) != len(proc.params):
            raise ParseError(
                f"{proc.name!r} expects {len(proc.params)} arguments, "
                f"got {len(stmt.args)}",
                stmt.span, self._source,
            )

        self._counter += 1
        rename = {
            name: f"{name}${proc.name}{self._counter}"
            for name in proc.params + proc.locals
        }
        self._extra_locals.extend(rename.values())

        statements: list[Stmt] = [
            Assign(rename[param], arg, stmt.span)
            for param, arg in zip(proc.params, stmt.args)
        ]
        renamed_body = _rename_block(proc.body, rename)
        renamed_body = self._relabel_block(renamed_body)
        inner_stack = stack | {proc.name}
        statements.extend(
            self._inline_block(renamed_body, inner_stack).body
        )
        statements.append(
            Assign(stmt.target, _rename_expr(proc.result, rename),
                   stmt.span)
        )
        return statements


    def _relabel_block(self, block: Block) -> Block:
        """Give each inlined copy of a loop a fresh unique label."""
        statements: list[Stmt] = []
        for stmt in block.body:
            statements.append(self._relabel_stmt(stmt))
        return Block(tuple(statements), block.span)

    def _relabel_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, While):
            self._next_label += 1
            return While(stmt.cond, self._relabel_block(stmt.body),
                         self._next_label, stmt.post, stmt.span)
        if isinstance(stmt, If):
            return If(stmt.cond, self._relabel_block(stmt.then_branch),
                      self._relabel_block(stmt.else_branch), stmt.span)
        if isinstance(stmt, Block):
            return self._relabel_block(stmt)
        return stmt


def inline_module(module: Module) -> Program:
    """Inline every call; returns a core-language program."""
    return _Inliner(module, module.program.source).inline_program()


# ---------------------------------------------------------------------------
# renaming helpers
# ---------------------------------------------------------------------------

def _rename_expr(expr: Expr, rename: dict[str, str]) -> Expr:
    if isinstance(expr, Name):
        return Name(rename.get(expr.name, expr.name), expr.span)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rename_expr(expr.left, rename),
                     _rename_expr(expr.right, rename), expr.span)
    raise TypeError(f"unexpected expression {expr!r}")


def _rename_pred(pred: Pred, rename: dict[str, str]) -> Pred:
    if isinstance(pred, BoolConst):
        return pred
    if isinstance(pred, Cmp):
        return Cmp(pred.op, _rename_expr(pred.left, rename),
                   _rename_expr(pred.right, rename), pred.span)
    if isinstance(pred, BoolOp):
        return BoolOp(pred.op,
                      tuple(_rename_pred(p, rename) for p in pred.parts),
                      pred.span)
    if isinstance(pred, NotPred):
        return NotPred(_rename_pred(pred.arg, rename), pred.span)
    raise TypeError(f"unexpected predicate {pred!r}")


def _rename_block(block: Block, rename: dict[str, str]) -> Block:
    return Block(
        tuple(_rename_stmt(s, rename) for s in block.body), block.span
    )


def _rename_stmt(stmt: Stmt, rename: dict[str, str]) -> Stmt:
    if isinstance(stmt, Skip):
        return stmt
    if isinstance(stmt, Assign):
        return Assign(rename.get(stmt.target, stmt.target),
                      _rename_expr(stmt.value, rename), stmt.span)
    if isinstance(stmt, Havoc):
        assume = (_rename_pred(stmt.assume, rename)
                  if stmt.assume is not None else None)
        return Havoc(rename.get(stmt.target, stmt.target), assume,
                     stmt.span)
    if isinstance(stmt, CallStmt):
        return CallStmt(
            rename.get(stmt.target, stmt.target),
            stmt.proc,
            tuple(_rename_expr(a, rename) for a in stmt.args),
            stmt.span,
        )
    if isinstance(stmt, Block):
        return _rename_block(stmt, rename)
    if isinstance(stmt, If):
        return If(_rename_pred(stmt.cond, rename),
                  _rename_block(stmt.then_branch, rename),
                  _rename_block(stmt.else_branch, rename), stmt.span)
    if isinstance(stmt, While):
        post = (_rename_pred(stmt.post, rename)
                if stmt.post is not None else None)
        return While(_rename_pred(stmt.cond, rename),
                     _rename_block(stmt.body, rename),
                     stmt.label, post, stmt.span)
    raise TypeError(f"unexpected statement {stmt!r}")
