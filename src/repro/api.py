"""The stable public API: one :class:`Pipeline` facade, one verdict
vocabulary, one JSON schema.

Most callers construct a :class:`Pipeline` and use its methods::

    from repro import Pipeline, ScriptedOracle

    pipe = Pipeline()
    outcome = pipe.analyze(source)            # -> AnalysisOutcome
    result = pipe.diagnose(source, oracle)    # -> DiagnosisResult
    batch = pipe.triage(jobs=4)               # -> BatchResult
    study = pipe.user_study(seed=2012)        # -> StudyResult

Every result type shares the same protocol (see :mod:`repro.schema` and
``docs/API.md``):

* ``triage_verdict`` (and, except on the analysis outcome whose
  ``verdict`` predates the redesign, ``verdict``) — the unified
  :class:`~repro.schema.TriageVerdict`;
* ``to_dict()`` / ``to_json()`` — the stable, versioned JSON payload,
  with an obs telemetry snapshot embedded when instrumentation is on.

The pre-redesign entry points (``analyze_source``, ``diagnose_source``,
``triage_suite``) were deprecated in the facade release and are now
removed; construct a :class:`Pipeline` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from . import obs
from .abstract import annotate_program
from .analysis import AnalysisResult, analyze_program
from .batch import BatchResult, triage_many
from .diagnosis import (
    DiagnosisResult,
    EngineConfig,
    ExhaustiveOracle,
    Oracle,
    SamplingOracle,
    diagnose_error,
)
from .lang import Program, parse_program
from .limits import Limits, ResourceExhausted
from .logic import neg
from .schema import TriageVerdict, dump_json, envelope
from .smt import SmtSolver
from .suite import Benchmark, benchmark_by_name, load_analysis
from .userstudy import StudyResult
from .userstudy import run_user_study as _run_user_study


class InitialVerdict(Enum):
    """Outcome of the analysis alone (Lemmas 1 and 2)."""

    VERIFIED = "verified"          # I |= phi: error-free
    REFUTED = "refuted"            # I |= !phi: definitely buggy
    UNCERTAIN = "uncertain"        # needs diagnosis


@dataclass
class AnalysisOutcome:
    """Program + analysis + the Lemma 1/2 classification attempt."""

    program: Program
    analysis: AnalysisResult
    verdict: InitialVerdict
    telemetry: dict | None = None  # obs snapshot delta, when enabled

    @property
    def invariants(self):
        return self.analysis.invariants

    @property
    def success(self):
        return self.analysis.success

    @property
    def triage_verdict(self) -> TriageVerdict:
        """The unified result vocabulary (see :mod:`repro.schema`)."""
        return TriageVerdict.from_classification(self.verdict.value)

    def to_dict(self) -> dict:
        """The stable ``repro.result`` payload (see docs/API.md)."""
        return envelope(
            "analysis",
            self.triage_verdict,
            program=self.program.name,
            initial_verdict=self.verdict.value,
            invariants=str(self.invariants),
            success=str(self.success),
            telemetry=self.telemetry,
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return dump_json(self.to_dict(), indent=indent)


class Pipeline:
    """The one front door to the whole reproduction.

    Bundles the configuration every entry point used to take ad hoc —
    annotation, engine knobs, a shared solver — and exposes the four
    workloads as methods.  Passing ``telemetry=True`` switches the
    process-wide obs instrumentation on, so every result produced by
    this pipeline embeds its telemetry snapshot.

    ``cache_dir`` opens the persistent content-addressed store there
    (:mod:`repro.cache`) and activates it for every workload this
    pipeline runs: diagnosis stage artifacts and QE/SMT verdicts are
    reused across runs and processes, and results carry a ``cache``
    provenance block.  ``incremental=True`` (triage only) additionally
    serves whole reports whose ``(I, phi)`` judgment digest is
    unchanged from recorded verdicts.
    """

    def __init__(self, *, auto_annotate: bool = True,
                 config: EngineConfig | None = None,
                 solver: SmtSolver | None = None,
                 telemetry: bool = False,
                 limits: Limits | None = None,
                 cache_dir: str | None = None,
                 incremental: bool = False):
        if incremental and cache_dir is None:
            raise ValueError("incremental re-triage needs cache_dir")
        self._auto_annotate = auto_annotate
        self._config = config
        self._solver = solver or SmtSolver()
        self._limits = limits
        self._cache_dir = cache_dir
        self._incremental = incremental
        if telemetry:
            obs.enable()

    def _scoped_store(self):
        """Context manager activating this pipeline's store, if any.

        Bound thread-locally: a pipeline may run on a serve worker
        thread concurrent with other requests, and the process-global
        store slot is not reentrant across threads.  Everything a
        workload runs (engine, QE/SMT caches, repair synthesis) resolves
        the store on the same thread, so the scope is equivalent for
        single-threaded callers; portfolio strategy threads inherit the
        caller's store explicitly.
        """
        from contextlib import nullcontext

        from .cache import open_store, use_store_here

        if self._cache_dir is None:
            return nullcontext()
        return use_store_here(open_store(self._cache_dir))

    # ------------------------------------------------------------------
    def analyze(self, source: str) -> AnalysisOutcome:
        """Parse, annotate, analyze and pre-classify a program."""
        with obs.capture() as cap, obs.span("api.analyze"):
            program = parse_program(source)
            if self._auto_annotate:
                program = annotate_program(program)
            analysis = analyze_program(program)
            if self._solver.entails(analysis.invariants,
                                    analysis.success):
                verdict = InitialVerdict.VERIFIED
            elif self._solver.entails(analysis.invariants,
                                      neg(analysis.success)):
                verdict = InitialVerdict.REFUTED
            else:
                verdict = InitialVerdict.UNCERTAIN
        return AnalysisOutcome(program, analysis, verdict,
                               telemetry=cap.snapshot)

    def diagnose(self, source: str, oracle: Oracle) -> DiagnosisResult:
        """The full pipeline: analysis plus the Figure 6 loop.

        A pipeline constructed with ``limits=`` governs the diagnosis
        loop: running out yields the ``RESOURCE_EXHAUSTED`` verdict
        (``UNKNOWN_RESOURCE`` in the unified vocabulary), not an
        exception.
        """
        outcome = self.analyze(source)
        with self._scoped_store():
            return diagnose_error(outcome.analysis, oracle, self._config,
                                  limits=self._limits)

    def triage(self, names: list[str] | None = None, *,
               jobs: int | None = None,
               limits: Limits | None = None,
               cache_dir: str | None = None,
               incremental: bool | None = None,
               workers: list[str] | None = None,
               transport=None) -> BatchResult:
        """Batch-triage benchmark reports (all of Figure 7 by default).

        Fans out over ``jobs`` worker processes (CPU count by default)
        with per-report resource governance, worker recovery and
        graceful degradation to serial execution; see
        :mod:`repro.batch`.  ``limits`` overrides the pipeline-level
        :class:`~repro.limits.Limits` for this call; ``cache_dir`` and
        ``incremental`` likewise override the pipeline-level cache
        settings.

        ``workers`` fans the batch out over running ``repro serve``
        instances instead of local processes; ``transport`` accepts any
        pre-built :mod:`repro.sched` transport outright (the scheduler
        core — retry, quarantine, grace windows, rebuild — is identical
        across all backends).
        """
        return triage_many(names, jobs=jobs,
                           config=self._config,
                           telemetry=obs.is_enabled(),
                           limits=limits if limits is not None
                           else self._limits,
                           cache_dir=cache_dir if cache_dir is not None
                           else self._cache_dir,
                           incremental=self._incremental
                           if incremental is None else incremental,
                           workers=workers,
                           transport=transport)

    #: Transport-explicit alias, mirroring :func:`repro.batch.triage_many`.
    triage_many = triage

    def repair(self, name_or_source: str, *,
               max_patches: int | None = None,
               oracle: Oracle | None = None) -> "RepairResult":
        """Triage a report and synthesize ranked, verified patches.

        ``name_or_source`` is a Figure 7 benchmark name or raw program
        text.  The report is triaged first (benchmarks under their
        ground-truth oracle, ad-hoc sources under the sampling oracle —
        or ``oracle`` when given); a real bug gets no patches (fixing
        genuine bugs is the developer's job, not abduction's), a clean
        report needs none, and anything else goes through
        :func:`repro.repair.synthesize_repairs`: the abduced Γ and the
        session's learned facts are placed as ``@assume``/``@post``/
        guard edits, every candidate re-verified by re-running the full
        front end on the patched program (Lemma 1 discharge), rejected
        when it would make ``I`` inconsistent, and ranked by the
        paper's cost function.  ``result.exit_status`` follows the
        documented contract: 0 = verified patch found (or already
        clean), 1 = real bug / no patch, 3 = degraded.
        """
        from .repair import RepairResult, synthesize_repairs

        try:
            bench = benchmark_by_name(name_or_source)
        except KeyError:
            bench = None
        from .suite import load_source

        source = load_source(bench) if bench is not None \
            else name_or_source
        with obs.capture() as cap, obs.span("api.repair"), \
                self._scoped_store():
            outcome = self.analyze(source)
            analysis = outcome.analysis
            program = outcome.program
            session = None
            if outcome.verdict is InitialVerdict.VERIFIED:
                result = RepairResult(
                    program=program.name,
                    verdict=TriageVerdict.FALSE_ALARM,
                    already_clean=True,
                    note="the report already discharges; no patch "
                         "needed",
                )
            elif outcome.verdict is InitialVerdict.REFUTED:
                result = RepairResult(
                    program=program.name,
                    verdict=TriageVerdict.REAL_BUG,
                    note="the analysis refutes the success condition "
                         "(Lemma 2): fix the program, not the report",
                )
            else:
                if oracle is None:
                    if bench is not None:
                        oracle = ExhaustiveOracle(
                            program, analysis,
                            radius=bench.oracle_radius)
                    else:
                        oracle = SamplingOracle(program, analysis)
                try:
                    session = diagnose_error(analysis, oracle,
                                             self._config,
                                             limits=self._limits)
                except ResourceExhausted as exc:
                    session = None
                    result = RepairResult(
                        program=program.name,
                        verdict=TriageVerdict.UNKNOWN_RESOURCE,
                        note=f"resource limit hit in stage "
                             f"{exc.stage} ({exc.kind}) before "
                             "repair could start",
                    )
                    verdict = None
                else:
                    verdict = session.triage_verdict
                if verdict is None:
                    pass  # degraded result already built above
                elif verdict is TriageVerdict.REAL_BUG:
                    result = RepairResult(
                        program=program.name, verdict=verdict,
                        num_queries=session.num_queries,
                        note="diagnosis validated the report as a "
                             "real bug: no patch is synthesized",
                    )
                elif verdict is TriageVerdict.UNKNOWN_RESOURCE:
                    result = RepairResult(
                        program=program.name, verdict=verdict,
                        num_queries=session.num_queries,
                        note="diagnosis ran out of budget before "
                             "repair could start",
                    )
                else:
                    patches = synthesize_repairs(
                        program, analysis,
                        config=self._config, solver=self._solver,
                        session=session, max_patches=max_patches,
                    )
                    result = RepairResult(
                        program=program.name, verdict=verdict,
                        patches=tuple(patches),
                        num_queries=session.num_queries,
                    )
        result.telemetry = cap.snapshot
        if session is not None and session.cache is not None:
            result.cache = session.cache
        return result

    def user_study(self, *, seed: int = 2012, num_recruited: int = 56,
                   benchmarks: tuple[Benchmark, ...] | None = None,
                   jobs: int | None = 1) -> StudyResult:
        """Regenerate the Figure 7 user study (see repro.userstudy)."""
        kwargs: dict = {
            "seed": seed,
            "num_recruited": num_recruited,
            "engine_config": self._config,
            "jobs": jobs,
        }
        if benchmarks is not None:
            kwargs["benchmarks"] = benchmarks
        return _run_user_study(**kwargs)


# ---------------------------------------------------------------------------
# benchmark helpers (stable, not deprecated)
# ---------------------------------------------------------------------------

def load_benchmark(name: str) -> tuple[Benchmark, Program, AnalysisResult]:
    """Load a Figure 7 benchmark with its analysis."""
    bench = benchmark_by_name(name)
    program, analysis = load_analysis(bench)
    return bench, program, analysis


def ground_truth_oracle(name: str) -> tuple[AnalysisResult, Oracle]:
    """A benchmark's analysis with its exhaustive ground-truth oracle."""
    bench, program, analysis = load_benchmark(name)
    return analysis, ExhaustiveOracle(program, analysis,
                                      radius=bench.oracle_radius)


def dynamic_oracle(name: str, *, samples: int = 400) -> tuple[
        AnalysisResult, Oracle]:
    """A benchmark's analysis with the sampling (random-testing) oracle —
    the Section 8 future-work mode that auto-answers witness queries."""
    bench, program, analysis = load_benchmark(name)
    return analysis, SamplingOracle(program, analysis, samples=samples)


def run_user_study(*, seed: int = 2012, num_recruited: int = 56,
                   benchmarks: tuple[Benchmark, ...] | None = None,
                   engine_config: EngineConfig | None = None,
                   jobs: int | None = 1) -> StudyResult:
    """Regenerate the Figure 7 user study (see repro.userstudy).

    Keyword-only with an explicit signature so a mistyped parameter
    fails loudly instead of being swallowed by a ``**kwargs`` sink.
    """
    kwargs: dict = {
        "seed": seed,
        "num_recruited": num_recruited,
        "engine_config": engine_config,
        "jobs": jobs,
    }
    if benchmarks is not None:
        kwargs["benchmarks"] = benchmarks
    return _run_user_study(**kwargs)
