"""High-level convenience API tying the pipeline together.

Most callers want one of three things:

* :func:`analyze_source` — parse, annotate, run the Section 3 analysis
  and report whether the check is proved, refuted, or uncertain;
* :func:`diagnose_source` — the full paper pipeline: analysis plus the
  Figure 6 query loop against an oracle;
* :func:`triage_suite` — batch-triage many reports across cores;
* :func:`run_user_study` — regenerate Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .abstract import annotate_program
from .analysis import AnalysisResult, analyze_program
from .batch import BatchResult, triage_many
from .diagnosis import (
    DiagnosisResult,
    EngineConfig,
    ExhaustiveOracle,
    Oracle,
    SamplingOracle,
    diagnose_error,
)
from .lang import Program, parse_program
from .logic import neg
from .smt import SmtSolver
from .suite import Benchmark, benchmark_by_name, load_analysis
from .userstudy import StudyResult
from .userstudy import run_user_study as _run_user_study


class InitialVerdict(Enum):
    """Outcome of the analysis alone (Lemmas 1 and 2)."""

    VERIFIED = "verified"          # I |= phi: error-free
    REFUTED = "refuted"            # I |= !phi: definitely buggy
    UNCERTAIN = "uncertain"        # needs diagnosis


@dataclass
class AnalysisOutcome:
    """Program + analysis + the Lemma 1/2 classification attempt."""

    program: Program
    analysis: AnalysisResult
    verdict: InitialVerdict

    @property
    def invariants(self):
        return self.analysis.invariants

    @property
    def success(self):
        return self.analysis.success


def analyze_source(source: str, *, auto_annotate: bool = True,
                   solver: SmtSolver | None = None) -> AnalysisOutcome:
    """Parse, annotate, analyze and pre-classify a program."""
    program = parse_program(source)
    if auto_annotate:
        program = annotate_program(program)
    analysis = analyze_program(program)
    solver = solver or SmtSolver()
    if solver.entails(analysis.invariants, analysis.success):
        verdict = InitialVerdict.VERIFIED
    elif solver.entails(analysis.invariants, neg(analysis.success)):
        verdict = InitialVerdict.REFUTED
    else:
        verdict = InitialVerdict.UNCERTAIN
    return AnalysisOutcome(program, analysis, verdict)


def diagnose_source(source: str, oracle: Oracle, *,
                    auto_annotate: bool = True,
                    config: EngineConfig | None = None) -> DiagnosisResult:
    """The full pipeline: analysis plus the Figure 6 interaction loop."""
    outcome = analyze_source(source, auto_annotate=auto_annotate)
    return diagnose_error(outcome.analysis, oracle, config)


def load_benchmark(name: str) -> tuple[Benchmark, Program, AnalysisResult]:
    """Load a Figure 7 benchmark with its analysis."""
    bench = benchmark_by_name(name)
    program, analysis = load_analysis(bench)
    return bench, program, analysis


def ground_truth_oracle(name: str) -> tuple[AnalysisResult, Oracle]:
    """A benchmark's analysis with its exhaustive ground-truth oracle."""
    bench, program, analysis = load_benchmark(name)
    return analysis, ExhaustiveOracle(program, analysis,
                                      radius=bench.oracle_radius)


def dynamic_oracle(name: str, *, samples: int = 400) -> tuple[
        AnalysisResult, Oracle]:
    """A benchmark's analysis with the sampling (random-testing) oracle —
    the Section 8 future-work mode that auto-answers witness queries."""
    bench, program, analysis = load_benchmark(name)
    return analysis, SamplingOracle(program, analysis, samples=samples)


def triage_suite(names: list[str] | None = None, *,
                 jobs: int | None = None,
                 timeout: float | None = None,
                 config: EngineConfig | None = None) -> BatchResult:
    """Batch-triage benchmark reports (all of Figure 7 by default).

    Fans out over ``jobs`` worker processes (CPU count by default) with
    per-report ``timeout`` and graceful degradation to serial execution;
    see :mod:`repro.batch`.
    """
    return triage_many(names, jobs=jobs, timeout=timeout, config=config)


def run_user_study(**kwargs) -> StudyResult:
    """Regenerate the Figure 7 user study (see repro.userstudy)."""
    return _run_user_study(**kwargs)
