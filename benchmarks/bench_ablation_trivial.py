"""Ablation A2: abduction vs the trivial proof obligation (Gamma = phi).

Section 4.1 observes that the trivial way to discharge an error is to
ask the user to prove the success condition itself.  The whole point of
weakest *minimum* obligations is that the queries become dramatically
smaller and more local.

Measured effect: formula size (AST nodes) and variable count of the
first query, abduction vs trivial, per benchmark.
"""

from __future__ import annotations

import pytest

from repro.diagnosis import Abducer, pi_p
from repro.suite import BENCHMARKS


def test_abduction_shrinks_queries(suite_artifacts):
    shrinkage = []
    print()
    for name, (_bench, _program, analysis) in suite_artifacts.items():
        inv, phi = analysis.invariants, analysis.success
        abducer = Abducer()
        gamma = abducer.proof_obligation(inv, phi, pi_p(inv, phi))
        if gamma is None:
            continue
        clever_size = gamma.formula.size()
        clever_vars = len(gamma.formula.free_vars())
        trivial_size = phi.size()
        trivial_vars = len(phi.free_vars())
        shrinkage.append(trivial_size / max(clever_size, 1))
        print(f"  {name:16s} abduced: {clever_size:4d} nodes/"
              f"{clever_vars} vars   trivial: {trivial_size:5d} nodes/"
              f"{trivial_vars} vars")
    geo = 1.0
    for s in shrinkage:
        geo *= s
    geo **= 1.0 / len(shrinkage)
    print(f"  geometric mean size reduction: {geo:.1f}x")
    # abduction must never enlarge a query, and must shrink on average
    assert all(s >= 1.0 for s in shrinkage)
    assert geo > 3.0


def test_trivial_strategy_benchmark(benchmark, suite_artifacts,
                                    suite_oracles):
    """End-to-end diagnosis cost with abduction disabled (the engine asks
    the raw success condition), on one representative problem."""
    from repro.diagnosis import EngineConfig, diagnose_error

    _bench, _program, analysis = suite_artifacts["p10_toggle"]
    oracle = suite_oracles["p10_toggle"]
    config = EngineConfig(use_abduction=False, max_rounds=8)
    result = benchmark.pedantic(
        diagnose_error, args=(analysis, oracle),
        kwargs={"config": config}, rounds=1, iterations=1,
    )
    # even without abduction the oracle-driven loop makes progress
    assert result is not None
