"""Batch-triage driver: serial vs parallel wall time, cache hit rates.

Measures the three perf layers working together on the full Figure 7
suite: hash-consed formulas + persistent caches make each report cheap,
per-worker solver reuse keeps repeat reports cheaper still, and the
multiprocessing fan-out divides wall time across cores.

The parallel-beats-serial assertion only applies on multi-core machines
— on a single core the fork/pickle overhead necessarily loses, and the
suite must not fail for being run on a small box.
"""

from __future__ import annotations

import os

import pytest

from repro.batch import triage_many
from repro.logic import conj, implies, neg
from repro.smt import SmtSolver
from repro.suite import BENCHMARKS

SUITE = [b.name for b in BENCHMARKS]
MULTICORE = (os.cpu_count() or 1) >= 2


def test_serial_triage_full_suite(benchmark):
    result = benchmark.pedantic(
        triage_many, args=(SUITE,), kwargs={"jobs": 1},
        rounds=1, iterations=1,
    )
    assert result.mode == "serial"
    assert all(o.correct for o in result.outcomes)
    benchmark.extra_info["wall_seconds"] = result.wall_seconds


def test_parallel_triage_full_suite(benchmark):
    jobs = min(4, os.cpu_count() or 1) if MULTICORE else 2
    result = benchmark.pedantic(
        triage_many, args=(SUITE,), kwargs={"jobs": jobs},
        rounds=1, iterations=1,
    )
    assert result.mode in ("parallel", "degraded")
    assert all(o.correct for o in result.outcomes)
    benchmark.extra_info["wall_seconds"] = result.wall_seconds
    benchmark.extra_info["jobs"] = jobs


@pytest.mark.skipif(not MULTICORE,
                    reason="speedup needs at least two cores")
def test_parallel_beats_serial_wall_clock():
    serial = triage_many(SUITE, jobs=1)
    parallel = triage_many(SUITE, jobs=min(4, os.cpu_count() or 1))
    assert parallel.mode == "parallel"
    assert [(o.name, o.classification) for o in parallel.outcomes] == \
           [(o.name, o.classification) for o in serial.outcomes]
    assert parallel.wall_seconds < serial.wall_seconds


def test_solver_cache_hit_rate(suite_artifacts):
    """The diagnosis engine's repeated checks must mostly hit the
    verdict cache once invariants stabilize within a round."""
    solver = SmtSolver(incremental=True)
    for name in SUITE[:4]:
        _bench, _program, analysis = suite_artifacts[name]
        inv, phi = analysis.invariants, analysis.success
        for _ in range(3):                      # engine-style re-checks
            solver.is_sat(inv)
            solver.is_sat(conj(inv, phi))
            solver.is_sat(neg(implies(inv, phi)))
    stats = solver.cache_stats()
    total = stats["hits"] + stats["misses"]
    hit_rate = stats["hits"] / total
    print(f"\nverdict cache: {stats} (hit rate {hit_rate:.1%})")
    assert hit_rate >= 0.5
    assert stats["evictions"] == 0
