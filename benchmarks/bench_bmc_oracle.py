"""Experiment F2 (Section 8 future work, static flavor): answering
queries by bounded unrolling.

Complements F1 (random testing): the unrolling oracle decides queries
against *all* executions with at most k iterations per loop — sound in
the existential direction always, and complete when no input can exceed
the bound.
"""

from __future__ import annotations

import pytest

from repro.api import Pipeline
from repro.bmc import UnrollingOracle, unroll_program
from repro.diagnosis import EngineConfig, Verdict, diagnose_error

OFF_BY_ONE = """
program offbyone(unsigned n) {
  var i = 0, written = 0;
  while (i <= n) { i = i + 1; written = written + 1; }
  @post(written >= 0)
  assert(written <= n);
}
"""


def test_bmc_validates_without_human(benchmark):
    outcome = Pipeline(auto_annotate=False).analyze(OFF_BY_ONE)

    def run():
        oracle = UnrollingOracle(outcome.program, outcome.analysis,
                                 bound=6)
        return diagnose_error(outcome.analysis, oracle,
                              EngineConfig(max_rounds=8))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.verdict is Verdict.VALIDATED
    # fully automatic: zero human involvement
    assert all(
        interaction.answer.value in ("yes", "no")
        for interaction in result.interactions
    )


@pytest.mark.parametrize("bound", [2, 4, 8])
def test_unrolling_cost(benchmark, bound):
    outcome = Pipeline(auto_annotate=False).analyze(OFF_BY_ONE)
    unrolled, info = benchmark(unroll_program, outcome.program, bound)
    assert info.bound == bound
