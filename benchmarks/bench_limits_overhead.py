"""Experiment E8: enabled-governor overhead of the limits layer.

The resource-governance checkpoints (:func:`repro.limits.tick`) sit at
the loop heads of Cooper QE, the MSA search, CDCL, the lazy SMT rounds
and the Omega test.  Two contracts are pinned here:

* **inactive** — with no governor installed a checkpoint is one global
  load and a ``None`` check, so an ungoverned run must stay within 5%
  of one with the checkpoints stubbed out entirely;
* **governed** — an *active* governor with generous (never-binding)
  limits does real accounting per tick, and must still stay within 5%
  of the ungoverned run.

Both comparisons use interleaved min-of-N chunks of the same abduction
round as ``bench_overhead.py``, so one-sided drift (CPU frequency,
cache warm-up ordering) cannot masquerade as checkpoint overhead.
Runs standalone (non-zero exit past a bound, for CI) or under pytest.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager

OVERHEAD_BOUND = 0.05
REPEATS = 7
ITERATIONS = 3

FOO = """
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) { i = i + 1; j = j + i; } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
"""


def _workload():
    """One full abduction round (obligation + witness) on a fresh
    abducer, driving QE, MSA, simplification, SAT and SMT."""
    from repro.diagnosis import Abducer, pi_p, pi_w

    analysis = _workload.analysis
    abducer = Abducer()
    inv, phi = analysis.invariants, analysis.success
    gamma = abducer.proof_obligation(inv, phi, pi_p(inv, phi))
    upsilon = abducer.failure_witness(inv, phi, pi_w(inv, phi))
    return gamma, upsilon


def _prepare() -> None:
    from repro.api import Pipeline

    _workload.analysis = Pipeline().analyze(FOO).analysis


def _timed_chunk(iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        _workload()
    return time.perf_counter() - start


@contextmanager
def _stubbed_ticks():
    """Swap :func:`repro.limits.tick` for a bare no-op — the
    "checkpoints compiled out" baseline.  Covers every solver because
    they all call through the module attribute."""
    from repro import limits

    real = limits.tick
    limits.tick = lambda stage, amount=1: None
    try:
        yield
    finally:
        limits.tick = real


def measure(repeats: int = REPEATS, iterations: int = ITERATIONS
            ) -> dict[str, float]:
    """Best-chunk seconds for each mode plus the two relative overheads
    (``inactive_overhead`` vs stubbed, ``governed_overhead`` vs
    inactive)."""
    from repro import limits

    _prepare()
    _workload()  # warm every lazy cache outside the timed region
    # generous bounds: orders of magnitude above what one round spends,
    # so the governed run takes every accounting branch but never raises
    roomy = limits.Limits(deadline=3600.0, max_steps=10**12,
                          max_nodes=10**12)
    stubbed = inactive = governed = float("inf")
    for _ in range(repeats):
        with _stubbed_ticks():
            stubbed = min(stubbed, _timed_chunk(iterations))
        inactive = min(inactive, _timed_chunk(iterations))
        with limits.governed(roomy):
            governed = min(governed, _timed_chunk(iterations))
    return {
        "stubbed": stubbed,
        "inactive": inactive,
        "governed": governed,
        "inactive_overhead": inactive / stubbed - 1.0,
        "governed_overhead": governed / inactive - 1.0,
    }


def test_inactive_checkpoints_below_bound():
    m = measure()
    assert m["inactive"] <= m["stubbed"] * (1.0 + OVERHEAD_BOUND), (
        f"inactive checkpoints cost {100.0 * m['inactive_overhead']:.1f}% "
        f"(stubbed {m['stubbed']:.4f}s vs inactive {m['inactive']:.4f}s); "
        f"bound is {100.0 * OVERHEAD_BOUND:.0f}%"
    )


def test_governed_checkpoints_below_bound():
    m = measure()
    assert m["governed"] <= m["inactive"] * (1.0 + OVERHEAD_BOUND), (
        f"an active governor costs {100.0 * m['governed_overhead']:.1f}% "
        f"(inactive {m['inactive']:.4f}s vs governed {m['governed']:.4f}s); "
        f"bound is {100.0 * OVERHEAD_BOUND:.0f}%"
    )


def main() -> int:
    m = measure()
    print(f"stubbed  (no checkpoints):    {m['stubbed']:.4f}s")
    print(f"inactive (no governor):       {m['inactive']:.4f}s  "
          f"({100.0 * m['inactive_overhead']:+.2f}%)")
    print(f"governed (generous limits):   {m['governed']:.4f}s  "
          f"({100.0 * m['governed_overhead']:+.2f}%)")
    failed = False
    if m["inactive"] > m["stubbed"] * (1.0 + OVERHEAD_BOUND):
        print("FAIL: inactive checkpoint overhead exceeds the bound",
              file=sys.stderr)
        failed = True
    if m["governed"] > m["inactive"] * (1.0 + OVERHEAD_BOUND):
        print("FAIL: enabled-governor overhead exceeds the bound",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"ok: governance overhead is within "
          f"{100.0 * OVERHEAD_BOUND:.0f}% in both modes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
