"""Experiment E7: disabled-instrumentation overhead of the obs layer.

The observability probes (``obs.span`` / ``obs.inc`` / ``obs.gauge``)
sit on the hottest paths of the stack — Cooper QE, the MSA search, the
CDCL solver, the abduction engine.  Their contract is *near-zero cost
when disabled*: each probe is one function call that checks a single
module-global boolean.  This benchmark pins that contract below 5%.

Two timings of the same abduction-round workload are compared:

* **stubbed** — ``obs.stubbed()`` swaps every probe for a bare no-op,
  the "instrumentation compiled out" baseline;
* **disabled** — the real probes with instrumentation off (the default
  state of every process).

Min-of-N timing is used on both sides so scheduler noise cannot fail
the bound spuriously.  Runs standalone (exit code 1 past the bound, for
CI) or under pytest.
"""

from __future__ import annotations

import sys
import time

OVERHEAD_BOUND = 0.05
REPEATS = 7
ITERATIONS = 3

FOO = """
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) { i = i + 1; j = j + i; } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
"""


def _workload():
    """One full abduction round (obligation + witness) on a fresh
    abducer, driving QE, MSA, simplification, SAT and SMT."""
    from repro.diagnosis import Abducer, pi_p, pi_w

    analysis = _workload.analysis
    abducer = Abducer()
    inv, phi = analysis.invariants, analysis.success
    gamma = abducer.proof_obligation(inv, phi, pi_p(inv, phi))
    upsilon = abducer.failure_witness(inv, phi, pi_w(inv, phi))
    return gamma, upsilon


def _prepare() -> None:
    from repro.api import Pipeline

    _workload.analysis = Pipeline().analyze(FOO).analysis


def _timed_chunk(iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        _workload()
    return time.perf_counter() - start


def measure(repeats: int = REPEATS,
            iterations: int = ITERATIONS) -> tuple[float, float, float]:
    """(stubbed_s, disabled_s, relative overhead of disabled probes).

    The two modes are timed in *interleaved* chunks and each side takes
    its best chunk, so one-sided drift (CPU frequency, cache warm-up
    ordering) cannot masquerade as probe overhead.
    """
    from repro import obs

    obs.disable()
    _prepare()
    _workload()  # warm every lazy cache outside the timed region
    stubbed = disabled = float("inf")
    for _ in range(repeats):
        with obs.stubbed():
            stubbed = min(stubbed, _timed_chunk(iterations))
        disabled = min(disabled, _timed_chunk(iterations))
    overhead = disabled / stubbed - 1.0
    return stubbed, disabled, overhead


def test_disabled_overhead_below_bound():
    stubbed, disabled, overhead = measure()
    assert disabled <= stubbed * (1.0 + OVERHEAD_BOUND), (
        f"disabled-mode probes cost {100.0 * overhead:.1f}% "
        f"(stubbed {stubbed:.4f}s vs disabled {disabled:.4f}s); "
        f"bound is {100.0 * OVERHEAD_BOUND:.0f}%"
    )


def main() -> int:
    stubbed, disabled, overhead = measure()
    print(f"stubbed  (no probes):       {stubbed:.4f}s")
    print(f"disabled (real probes off): {disabled:.4f}s")
    print(f"overhead: {100.0 * overhead:+.2f}% "
          f"(bound {100.0 * OVERHEAD_BOUND:.0f}%)")
    if disabled > stubbed * (1.0 + OVERHEAD_BOUND):
        print("FAIL: disabled-mode instrumentation overhead exceeds the "
              "bound", file=sys.stderr)
        return 1
    print("ok: disabled-mode instrumentation is within the bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
