"""Experiment E7: instrumentation overhead of the obs layer.

The observability probes (``obs.span`` / ``obs.inc`` / ``obs.gauge``)
and the provenance recorder (``prov.record``) sit on the hottest paths
of the stack — Cooper QE, the MSA search, the CDCL solver, the
abduction engine.  Two contracts are pinned here:

* **provenance disabled** (the default state of every process) must
  cost under 5% of an abduction round: each probe is one function call
  that checks a single module-global boolean;
* **provenance enabled** (spans + histograms + derivation nodes with
  their formula renderings) must cost under 10% — the price of a full
  ``explain``-grade derivation DAG.

Three timings of the same abduction-round workload are compared:

* **stubbed** — ``obs.stubbed()`` swaps every probe for a bare no-op,
  the "instrumentation compiled out" baseline;
* **disabled** — the real probes with instrumentation off;
* **enabled** — core obs *and* provenance recording both on.

Min-of-N timing is used on all sides so scheduler noise cannot fail
the bounds spuriously.  Runs standalone (exit code 1 past a bound, for
CI) or under pytest.
"""

from __future__ import annotations

import sys
import time

OVERHEAD_BOUND = 0.05
PROVENANCE_BOUND = 0.10
REPEATS = 7
ITERATIONS = 3

FOO = """
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) { i = i + 1; j = j + i; } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
"""


def _workload():
    """One full abduction round (obligation + witness) on a fresh
    abducer, driving QE, MSA, simplification, SAT and SMT."""
    from repro.diagnosis import Abducer, pi_p, pi_w

    analysis = _workload.analysis
    abducer = Abducer()
    inv, phi = analysis.invariants, analysis.success
    gamma = abducer.proof_obligation(inv, phi, pi_p(inv, phi))
    upsilon = abducer.failure_witness(inv, phi, pi_w(inv, phi))
    return gamma, upsilon


def _prepare() -> None:
    from repro.api import Pipeline

    _workload.analysis = Pipeline().analyze(FOO).analysis


def _timed_chunk(iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        _workload()
    return time.perf_counter() - start


def measure(repeats: int = REPEATS,
            iterations: int = ITERATIONS) -> dict[str, float]:
    """Best-chunk seconds for each mode plus relative overheads.

    The three modes are timed in *interleaved* chunks and each side
    takes its best chunk, so one-sided drift (CPU frequency, cache
    warm-up ordering) cannot masquerade as probe overhead.
    """
    from repro import obs
    from repro.obs import provenance as prov

    prov.disable()
    obs.disable()
    _prepare()
    _workload()  # warm every lazy cache outside the timed region
    stubbed = disabled = enabled = float("inf")
    try:
        for _ in range(repeats):
            with obs.stubbed():
                stubbed = min(stubbed, _timed_chunk(iterations))
            disabled = min(disabled, _timed_chunk(iterations))
            prov.enable()
            enabled = min(enabled, _timed_chunk(iterations))
            prov.disable()
            obs.disable()
            prov.reset()
            obs.reset()
    finally:
        prov.disable()
        obs.disable()
        prov.reset()
        obs.reset()
    return {
        "stubbed_s": stubbed,
        "disabled_s": disabled,
        "enabled_s": enabled,
        "disabled_overhead": disabled / stubbed - 1.0,
        "enabled_overhead": enabled / stubbed - 1.0,
    }


def test_disabled_overhead_below_bound():
    m = measure()
    assert m["disabled_s"] <= m["stubbed_s"] * (1.0 + OVERHEAD_BOUND), (
        f"disabled-mode probes cost {100.0 * m['disabled_overhead']:.1f}% "
        f"(stubbed {m['stubbed_s']:.4f}s vs disabled "
        f"{m['disabled_s']:.4f}s); bound is "
        f"{100.0 * OVERHEAD_BOUND:.0f}%"
    )


def test_provenance_overhead_below_bound():
    m = measure()
    assert m["enabled_s"] <= m["stubbed_s"] * (1.0 + PROVENANCE_BOUND), (
        f"provenance-enabled run costs "
        f"{100.0 * m['enabled_overhead']:.1f}% "
        f"(stubbed {m['stubbed_s']:.4f}s vs enabled "
        f"{m['enabled_s']:.4f}s); bound is "
        f"{100.0 * PROVENANCE_BOUND:.0f}%"
    )


def main() -> int:
    m = measure()
    print(f"stubbed  (no probes):          {m['stubbed_s']:.4f}s")
    print(f"disabled (real probes off):    {m['disabled_s']:.4f}s")
    print(f"enabled  (obs + provenance):   {m['enabled_s']:.4f}s")
    print(f"disabled overhead: {100.0 * m['disabled_overhead']:+.2f}% "
          f"(bound {100.0 * OVERHEAD_BOUND:.0f}%)")
    print(f"enabled  overhead: {100.0 * m['enabled_overhead']:+.2f}% "
          f"(bound {100.0 * PROVENANCE_BOUND:.0f}%)")
    status = 0
    if m["disabled_s"] > m["stubbed_s"] * (1.0 + OVERHEAD_BOUND):
        print("FAIL: disabled-mode instrumentation overhead exceeds the "
              "bound", file=sys.stderr)
        status = 1
    if m["enabled_s"] > m["stubbed_s"] * (1.0 + PROVENANCE_BOUND):
        print("FAIL: provenance-enabled overhead exceeds the bound",
              file=sys.stderr)
        status = 1
    if status == 0:
        print("ok: instrumentation overhead is within both bounds")
    return status


if __name__ == "__main__":
    sys.exit(main())
