"""Experiment E7: instrumentation overhead of the obs layer.

The observability probes (``obs.span`` / ``obs.inc`` / ``obs.gauge``)
and the provenance recorder (``prov.record``) sit on the hottest paths
of the stack — Cooper QE, the MSA search, the CDCL solver, the
abduction engine.  Two contracts are pinned here:

* **provenance disabled** (the default state of every process) must
  cost under 5% of an abduction round: each probe is one function call
  that checks a single module-global boolean;
* **provenance enabled** (spans + histograms + derivation nodes with
  their formula renderings) must cost under 10% — the price of a full
  ``explain``-grade derivation DAG;
* **everything on** (obs + provenance + structured logging with a
  trace context bound and the slow-query hook armed) must also stay
  under 10% — the price of a fully observable production run.

Four timings of the same abduction-round workload are compared:

* **stubbed** — ``obs.stubbed()`` swaps every probe for a bare no-op,
  the "instrumentation compiled out" baseline;
* **disabled** — the real probes with instrumentation off;
* **enabled** — core obs *and* provenance recording both on;
* **full** — enabled plus ``repro.obs.logging`` configured (ring sink,
  slow-query hook) under a bound :class:`~repro.obs.context.TraceContext`.

Min-of-N timing is used on all sides so scheduler noise cannot fail
the bounds spuriously; when a bound still trips, the measurement is
repeated (up to three attempts, minima merged) before failing —
per-process systematic noise (allocator/code placement) occasionally
inflates one mode by several percent on shared machines.  Runs
standalone (exit code 1 past a bound, for CI) or under pytest; the
standalone run appends its measurements to
``BENCH_obs.json`` (schema ``repro.history/1``) so the overhead
trajectory is tracked across commits.
"""

from __future__ import annotations

import gc
import sys
import time

OVERHEAD_BOUND = 0.05
PROVENANCE_BOUND = 0.10
FULL_BOUND = 0.10
REPEATS = 16
ITERATIONS = 3

FOO = """
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) { i = i + 1; j = j + i; } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
"""


def _workload():
    """One full abduction round (obligation + witness) on a fresh
    abducer, driving QE, MSA, simplification, SAT and SMT."""
    from repro.diagnosis import Abducer, pi_p, pi_w

    analysis = _workload.analysis
    abducer = Abducer()
    inv, phi = analysis.invariants, analysis.success
    gamma = abducer.proof_obligation(inv, phi, pi_p(inv, phi))
    upsilon = abducer.failure_witness(inv, phi, pi_w(inv, phi))
    return gamma, upsilon


def _prepare() -> None:
    from repro.api import Pipeline

    _workload.analysis = Pipeline().analyze(FOO).analysis


def _timed_chunk(iterations: int) -> float:
    gc.collect()
    start = time.perf_counter()
    for _ in range(iterations):
        _workload()
    return time.perf_counter() - start


def measure(repeats: int = REPEATS,
            iterations: int = ITERATIONS) -> dict[str, float]:
    """Best-chunk seconds for each mode plus relative overheads.

    The three modes are timed in *interleaved* chunks and each side
    takes its best chunk, so one-sided drift (CPU frequency, cache
    warm-up ordering) cannot masquerade as probe overhead.
    """
    from repro import obs
    from repro.obs import context as ocontext
    from repro.obs import logging as olog
    from repro.obs import provenance as prov

    prov.disable()
    obs.disable()
    olog.reset()
    _prepare()
    _workload()  # warm every lazy cache outside the timed region
    stubbed = disabled = enabled = full = float("inf")
    # collector pauses hit the allocation-heavy instrumented chunks
    # hardest; keep them out of every timed region so the comparison
    # measures probes, not GC scheduling
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            with obs.stubbed():
                stubbed = min(stubbed, _timed_chunk(iterations))
            disabled = min(disabled, _timed_chunk(iterations))
            prov.enable()
            enabled = min(enabled, _timed_chunk(iterations))
            olog.configure(level="info", slow_query_ms=100.0)
            with ocontext.bind(ocontext.new_trace("bench")):
                full = min(full, _timed_chunk(iterations))
            olog.reset()
            prov.disable()
            obs.disable()
            prov.reset()
            obs.reset()
    finally:
        if gc_was_enabled:
            gc.enable()
        olog.reset()
        prov.disable()
        obs.disable()
        prov.reset()
        obs.reset()
    return {
        "stubbed_s": stubbed,
        "disabled_s": disabled,
        "enabled_s": enabled,
        "full_s": full,
        "disabled_overhead": disabled / stubbed - 1.0,
        "enabled_overhead": enabled / stubbed - 1.0,
        "full_overhead": full / stubbed - 1.0,
    }


def _overheads(m: dict[str, float]) -> dict[str, float]:
    stubbed = m["stubbed_s"]
    m["disabled_overhead"] = m["disabled_s"] / stubbed - 1.0
    m["enabled_overhead"] = m["enabled_s"] / stubbed - 1.0
    m["full_overhead"] = m["full_s"] / stubbed - 1.0
    return m


def _bounds_ok(m: dict[str, float]) -> bool:
    stubbed = m["stubbed_s"]
    return (m["disabled_s"] <= stubbed * (1.0 + OVERHEAD_BOUND)
            and m["enabled_s"] <= stubbed * (1.0 + PROVENANCE_BOUND)
            and m["full_s"] <= stubbed * (1.0 + FULL_BOUND))


def measure_robust(attempts: int = 3) -> dict[str, float]:
    """Measure, retrying on a tripped bound with minima merged.

    Every mode takes the min over all attempts — the same estimator on
    every side, so retrying cannot bias the comparison, only remove
    one-process noise.
    """
    best: dict[str, float] | None = None
    for _ in range(attempts):
        m = measure()
        if best is None:
            best = m
        else:
            for key in ("stubbed_s", "disabled_s", "enabled_s",
                        "full_s"):
                best[key] = min(best[key], m[key])
        if _bounds_ok(best):
            break
    return _overheads(best)


def test_disabled_overhead_below_bound():
    m = measure_robust()
    assert m["disabled_s"] <= m["stubbed_s"] * (1.0 + OVERHEAD_BOUND), (
        f"disabled-mode probes cost {100.0 * m['disabled_overhead']:.1f}% "
        f"(stubbed {m['stubbed_s']:.4f}s vs disabled "
        f"{m['disabled_s']:.4f}s); bound is "
        f"{100.0 * OVERHEAD_BOUND:.0f}%"
    )


def test_provenance_overhead_below_bound():
    m = measure_robust()
    assert m["enabled_s"] <= m["stubbed_s"] * (1.0 + PROVENANCE_BOUND), (
        f"provenance-enabled run costs "
        f"{100.0 * m['enabled_overhead']:.1f}% "
        f"(stubbed {m['stubbed_s']:.4f}s vs enabled "
        f"{m['enabled_s']:.4f}s); bound is "
        f"{100.0 * PROVENANCE_BOUND:.0f}%"
    )


def test_full_stack_overhead_below_bound():
    m = measure_robust()
    assert m["full_s"] <= m["stubbed_s"] * (1.0 + FULL_BOUND), (
        f"fully-observable run (obs + provenance + logging + trace) "
        f"costs {100.0 * m['full_overhead']:.1f}% "
        f"(stubbed {m['stubbed_s']:.4f}s vs full {m['full_s']:.4f}s); "
        f"bound is {100.0 * FULL_BOUND:.0f}%"
    )


def _record_history(m: dict[str, float]) -> None:
    """Append this measurement to BENCH_obs.json (repro.history/1).

    One extra instrumented run supplies the per-stage latency summary;
    the overhead ratios travel in the entry's ``meta``.
    """
    from pathlib import Path

    from repro import obs
    from repro.obs import history
    from repro.obs import provenance as prov

    obs.reset()
    prov.enable()
    try:
        _workload()
        snapshot = obs.snapshot()
    finally:
        prov.disable()
        prov.reset()
        obs.disable()
        obs.reset()
    path = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    history.append_run(
        path, snapshot, label="bench_overhead",
        meta={k: round(v, 6) for k, v in m.items()},
    )
    print(f"recorded overhead run in {path.name}")


def main() -> int:
    m = measure_robust()
    print(f"stubbed  (no probes):          {m['stubbed_s']:.4f}s")
    print(f"disabled (real probes off):    {m['disabled_s']:.4f}s")
    print(f"enabled  (obs + provenance):   {m['enabled_s']:.4f}s")
    print(f"full     (+ logging + trace):  {m['full_s']:.4f}s")
    print(f"disabled overhead: {100.0 * m['disabled_overhead']:+.2f}% "
          f"(bound {100.0 * OVERHEAD_BOUND:.0f}%)")
    print(f"enabled  overhead: {100.0 * m['enabled_overhead']:+.2f}% "
          f"(bound {100.0 * PROVENANCE_BOUND:.0f}%)")
    print(f"full     overhead: {100.0 * m['full_overhead']:+.2f}% "
          f"(bound {100.0 * FULL_BOUND:.0f}%)")
    status = 0
    if m["disabled_s"] > m["stubbed_s"] * (1.0 + OVERHEAD_BOUND):
        print("FAIL: disabled-mode instrumentation overhead exceeds the "
              "bound", file=sys.stderr)
        status = 1
    if m["enabled_s"] > m["stubbed_s"] * (1.0 + PROVENANCE_BOUND):
        print("FAIL: provenance-enabled overhead exceeds the bound",
              file=sys.stderr)
        status = 1
    if m["full_s"] > m["stubbed_s"] * (1.0 + FULL_BOUND):
        print("FAIL: fully-observable overhead exceeds the bound",
              file=sys.stderr)
        status = 1
    if status == 0:
        print("ok: instrumentation overhead is within all bounds")
    _record_history(m)
    return status


if __name__ == "__main__":
    sys.exit(main())
