"""Ablation A3: contextual simplification on/off (the Lemma 3 remark).

The paper simplifies the QE output with I as the critical constraint "to
avoid unnecessary queries".  Measured effect: query formula size with
and without the simplification pass.
"""

from __future__ import annotations

import pytest

from repro.diagnosis import Abducer, pi_p
from repro.suite import BENCHMARKS


def first_obligation(analysis, use_simplification):
    abducer = Abducer(use_simplification=use_simplification)
    inv, phi = analysis.invariants, analysis.success
    return abducer.proof_obligation(inv, phi, pi_p(inv, phi))


def test_simplification_never_hurts(suite_artifacts):
    print()
    total_with, total_without = 0, 0
    for name, (_bench, _program, analysis) in suite_artifacts.items():
        with_simp = first_obligation(analysis, True)
        without = first_obligation(analysis, False)
        if with_simp is None or without is None:
            continue
        total_with += with_simp.formula.size()
        total_without += without.unsimplified.size()
        print(f"  {name:16s} simplified: {with_simp.formula.size():3d} "
              f"nodes   raw: {without.unsimplified.size():4d} nodes")
    print(f"  totals: simplified={total_with} raw={total_without}")
    assert total_with <= total_without


@pytest.mark.parametrize("use_simplification", [True, False],
                         ids=["simplify-on", "simplify-off"])
def test_simplification_cost(benchmark, suite_artifacts,
                             use_simplification):
    """The runtime price of the simplification pass itself."""
    _bench, _program, analysis = suite_artifacts["p01_accumulate"]
    benchmark.pedantic(
        first_obligation, args=(analysis, use_simplification),
        rounds=3, iterations=1, warmup_rounds=1,
    )
