"""Experiment F1 (the paper's Section 8 future work): using dynamic
analysis to answer queries automatically.

"We believe dynamic analysis could also be very useful for automatically
discharging some of the failure witness queries."

The sampling oracle runs the program on random inputs; it can answer
witness queries "yes" and invariant queries "no" definitively, and says
"unknown" otherwise.  Measured: how many of the 11 reports random
testing alone resolves (it should validate the real bugs whose
witnesses are reachable by sampling, and resolve none of the false
alarms — proving universal facts needs a human or a prover).
"""

from __future__ import annotations

import pytest

from repro.diagnosis import EngineConfig, SamplingOracle, Verdict, \
    diagnose_error
from repro.suite import BENCHMARKS


@pytest.fixture(scope="module")
def outcomes(suite_artifacts):
    results = {}
    for name, (bench, program, analysis) in suite_artifacts.items():
        oracle = SamplingOracle(program, analysis, samples=300)
        results[name] = (
            bench,
            diagnose_error(analysis, oracle, EngineConfig(max_rounds=6)),
        )
    return results


def test_dynamic_oracle_validates_bugs(outcomes):
    print()
    validated, unresolved, wrong = 0, 0, 0
    for name, (bench, result) in outcomes.items():
        print(f"  {name:16s} truth={bench.classification:11s} "
              f"dynamic={result.classification}")
        if result.classification == "unknown":
            unresolved += 1
        elif result.classification == bench.classification:
            validated += 1
        else:
            wrong += 1
    # random testing must never produce a wrong classification:
    # its definite answers are backed by concrete executions
    assert wrong == 0
    # and it must validate at least 3 of the 5 real bugs on its own
    assert validated >= 3


def test_dynamic_oracle_speed(benchmark, suite_artifacts):
    bench, program, analysis = suite_artifacts["p09_window"]
    oracle = SamplingOracle(program, analysis, samples=300)

    result = benchmark.pedantic(
        diagnose_error, args=(analysis, oracle),
        kwargs={"config": EngineConfig(max_rounds=6)},
        rounds=1, iterations=1,
    )
    assert result.verdict is Verdict.VALIDATED
