"""Experiment: fleet triage — one scheduler core, three backends.

The Figure 7 suite is tiled into a synthetic corpus of duplicate
arrivals (a fleet sees the same report from many sources; the
content-addressed store dedups the heavy work), then triaged through
the three backends of the one retry/quarantine scheduler
(:mod:`repro.sched`):

* **serial** — ``jobs=1`` (InlineTransport);
* **pool** — ``jobs=2`` (LocalPoolTransport, the fork pool);
* **remote** — two in-process ``repro serve`` workers sharing one
  cache root (RemoteTransport over HTTP, sharded by content digest
  with work stealing).

Each backend gets its own fresh store root, so every comparison is a
cold run and the in-corpus duplicates are the only dedup at play.
The hard contract pinned here is *verdict identity* across backends —
wall times are reported and recorded (a ``fleet`` entry in
``BENCH_obs.json``) but not bounded: the remote backend pays HTTP
round-trips by design.

Runs standalone (exit 1 on verdict divergence, for CI) or under
pytest.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

#: The corpus is the Figure 7 suite repeated this many times.
TILE = 2


def _corpus() -> list[str]:
    from repro.suite import BENCHMARKS

    return [b.name for b in BENCHMARKS] * TILE


def _verdicts(result) -> bytes:
    """The backend-independent projection, serialized for comparison.

    Sorted because the corpus carries duplicate names and only the
    per-report answer matters, not arrival order."""
    return json.dumps(
        sorted({(o.name, o.classification, o.num_queries, o.rounds)
                for o in result.outcomes}),
        separators=(",", ":"),
    ).encode()


def _run_local(names: list[str], jobs: int, cache_dir: str):
    from repro.batch import triage_many

    start = time.perf_counter()
    result = triage_many(names, jobs=jobs, cache_dir=cache_dir)
    return time.perf_counter() - start, result


def _run_remote(names: list[str], cache_dir: str):
    from repro.batch import triage_many
    from repro.serve import TriageServer

    servers = []
    try:
        for _ in range(2):
            server = TriageServer(port=0, cache_dir=cache_dir, workers=2)
            server.start()
            servers.append(server)
        urls = [s.url for s in servers]
        start = time.perf_counter()
        result = triage_many(names, workers=urls, cache_dir=cache_dir)
        return time.perf_counter() - start, result
    finally:
        for server in servers:
            server.shutdown()


def measure() -> dict:
    names = _corpus()
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as root:
        serial_s, serial = _run_local(names, 1, f"{root}/serial")
        pool_s, pool = _run_local(names, 2, f"{root}/pool")
        remote_s, remote = _run_remote(names, f"{root}/remote")
    return {
        "reports": len(names),
        "serial_s": serial_s,
        "pool_s": pool_s,
        "remote_s": remote_s,
        "remote_steals": remote.steals or 0,
        "identical": _verdicts(serial) == _verdicts(pool)
        == _verdicts(remote),
        "accuracy": remote.accuracy,
        "degraded": [o.name for o in remote.degraded],
    }


def test_backends_reach_identical_verdicts():
    m = measure()
    assert m["identical"], \
        "serial / pool / remote verdicts diverged on the tiled corpus"
    assert not m["degraded"], m["degraded"]
    assert m["accuracy"] == 1.0


def _record_history(m: dict) -> None:
    """Append the measurement to BENCH_obs.json (repro.history/1)."""
    from repro.obs import history

    path = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    meta = {k: (round(v, 6) if isinstance(v, float) else v)
            for k, v in m.items()}
    history.append_run(path, None, label="fleet", meta=meta)
    print(f"recorded fleet run in {path.name}")


def main() -> int:
    m = measure()
    print(f"corpus: {m['reports']} reports "
          f"(Figure 7 x {TILE}, duplicate arrivals)")
    print(f"serial (jobs=1):          {m['serial_s']:.3f}s")
    print(f"pool   (jobs=2):          {m['pool_s']:.3f}s")
    print(f"remote (2 serve workers): {m['remote_s']:.3f}s "
          f"(steals {m['remote_steals']})")
    print(f"verdicts {'identical' if m['identical'] else 'DIVERGED'} "
          f"across backends, accuracy {100.0 * m['accuracy']:.0f}%")
    if not m["identical"] or m["degraded"]:
        print("FAIL: the three backends did not agree", file=sys.stderr)
        return 1
    _record_history(m)
    print("ok: one scheduler core, three backends, one answer")
    return 0


if __name__ == "__main__":
    sys.exit(main())
