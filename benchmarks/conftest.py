"""Shared fixtures for the benchmark harness.

Loading + analyzing all 11 problems is expensive; do it once per session,
fanned out over worker processes via the batch loader (pass ``--serial``
to force in-process loading, e.g. when debugging a loader crash).
"""

from __future__ import annotations

import pytest

from repro.batch import load_many
from repro.diagnosis import ExhaustiveOracle
from repro.suite import BENCHMARKS


def pytest_addoption(parser):
    parser.addoption(
        "--serial", action="store_true", default=False,
        help="load suite artifacts serially instead of in worker processes",
    )


@pytest.fixture(scope="session")
def suite_artifacts(request):
    """{name: (benchmark, program, analysis)} for all 11 problems."""
    jobs = 1 if request.config.getoption("--serial") else None
    return {
        bench.name: (bench, program, analysis)
        for bench, program, analysis in load_many(BENCHMARKS, jobs=jobs)
    }


@pytest.fixture(scope="session")
def suite_oracles(suite_artifacts):
    """Ground-truth oracles, with their execution caches pre-warmed."""
    oracles = {}
    for name, (bench, program, analysis) in suite_artifacts.items():
        oracles[name] = ExhaustiveOracle(
            program, analysis, radius=bench.oracle_radius
        )
    return oracles
