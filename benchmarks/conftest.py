"""Shared fixtures for the benchmark harness.

Loading + analyzing all 11 problems is expensive; do it once per session.
"""

from __future__ import annotations

import pytest

from repro.diagnosis import ExhaustiveOracle
from repro.suite import BENCHMARKS, load_analysis


@pytest.fixture(scope="session")
def suite_artifacts():
    """{name: (benchmark, program, analysis)} for all 11 problems."""
    artifacts = {}
    for bench in BENCHMARKS:
        program, analysis = load_analysis(bench)
        artifacts[bench.name] = (bench, program, analysis)
    return artifacts


@pytest.fixture(scope="session")
def suite_oracles(suite_artifacts):
    """Ground-truth oracles, with their execution caches pre-warmed."""
    oracles = {}
    for name, (bench, program, analysis) in suite_artifacts.items():
        oracles[name] = ExhaustiveOracle(
            program, analysis, radius=bench.oracle_radius
        )
    return oracles
