"""Experiment E8: warm-cache speedup of the persistent artifact store.

The staged pipeline (PR 5) persists entailment, abduction,
decomposition, QE and SMT artifacts in a content-addressed on-disk
store (:mod:`repro.cache`), so a second triage of the same suite
re-derives nothing heavy.  The contract pinned here: with every
in-process memo dropped between runs, a **warm** second full-suite
triage must be at least ``SPEEDUP_BOUND``x faster than the cold run
that populated the store — and must reach byte-identical verdicts.

Runs standalone (exit code 1 past the bound, for CI) or under pytest.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time

SPEEDUP_BOUND = 2.0
REPEATS = 3


def _drop_memory_caches() -> None:
    """Forget every in-process memo so only the disk store can answer."""
    from repro.qe.cooper import clear_qe_caches

    clear_qe_caches()


def _verdicts(result) -> bytes:
    return json.dumps(
        [[o.name, o.classification, o.num_queries, o.rounds]
         for o in result.outcomes],
        separators=(",", ":"),
    ).encode()


def _run(cache_dir: str):
    from repro.batch import triage_many

    start = time.perf_counter()
    result = triage_many(None, jobs=1, cache_dir=cache_dir)
    return time.perf_counter() - start, result


def measure(repeats: int = REPEATS) -> dict:
    """Cold-vs-warm full-suite timings against a fresh store.

    The cold run is timed once (it populates the store); the warm side
    takes its best of ``repeats`` so scheduler noise cannot fail the
    bound spuriously.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        cold_s, cold = _run(root)
        warm_s = float("inf")
        warm = None
        for _ in range(repeats):
            _drop_memory_caches()
            elapsed, warm = _run(root)
            warm_s = min(warm_s, elapsed)
        return {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s,
            "identical": _verdicts(cold) == _verdicts(warm),
            "accuracy": cold.accuracy,
        }


def test_warm_run_is_at_least_twice_as_fast():
    m = measure()
    assert m["identical"], "warm verdicts diverged from the cold run"
    assert m["accuracy"] == 1.0
    assert m["speedup"] >= SPEEDUP_BOUND, (
        f"warm re-triage is only {m['speedup']:.2f}x faster "
        f"(cold {m['cold_s']:.3f}s vs warm {m['warm_s']:.3f}s); "
        f"bound is {SPEEDUP_BOUND:.1f}x"
    )


def main() -> int:
    m = measure()
    print(f"cold full-suite triage:  {m['cold_s']:.3f}s "
          f"(accuracy {100.0 * m['accuracy']:.0f}%)")
    print(f"warm full-suite triage:  {m['warm_s']:.3f}s "
          f"(best of {REPEATS})")
    print(f"speedup: {m['speedup']:.2f}x (bound {SPEEDUP_BOUND:.1f}x), "
          f"verdicts {'identical' if m['identical'] else 'DIVERGED'}")
    if not m["identical"]:
        print("FAIL: warm verdicts diverged from the cold run",
              file=sys.stderr)
        return 1
    if m["speedup"] < SPEEDUP_BOUND:
        print("FAIL: warm-cache speedup is below the bound",
              file=sys.stderr)
        return 1
    print("ok: the persistent store meets the warm-run speedup bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
