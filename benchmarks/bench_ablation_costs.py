"""Ablation A1: the paper's cost functions vs uniform costs.

Definition 2/9's asymmetric costs exist to keep queries *local* (about
few sources of imprecision) and to steer proof obligations away from the
execution environment and witnesses toward it.  Under uniform costs the
abduction is free to mix input and abstraction variables arbitrarily.

Measured effect: with the paper's Pi_p, proof obligations avoid input
variables whenever possible; with uniform costs they frequently do not.
"""

from __future__ import annotations

import pytest

from repro.diagnosis import Abducer, pi_p, uniform
from repro.suite import BENCHMARKS


def obligations(suite_artifacts, cost_factory):
    results = {}
    for name, (_bench, _program, analysis) in suite_artifacts.items():
        abducer = Abducer()
        inv, phi = analysis.invariants, analysis.success
        gamma = abducer.proof_obligation(inv, phi, cost_factory(inv, phi))
        results[name] = gamma
    return results


def test_paper_costs_prefer_local_queries(suite_artifacts):
    paper = obligations(suite_artifacts, pi_p)
    flat = obligations(suite_artifacts, uniform)

    def input_var_uses(gammas):
        return sum(
            sum(1 for v in g.formula.free_vars() if v.is_input)
            for g in gammas.values() if g is not None
        )

    paper_inputs = input_var_uses(paper)
    flat_inputs = input_var_uses(flat)
    print(f"\ninput variables mentioned by first obligations: "
          f"paper-cost={paper_inputs}  uniform-cost={flat_inputs}")
    # the paper's cost model must not use *more* environment facts
    assert paper_inputs <= flat_inputs


def test_cost_model_benchmark(benchmark, suite_artifacts):
    """Time the paper-cost abduction across the whole suite."""
    benchmark.pedantic(
        obligations, args=(suite_artifacts, pi_p), rounds=1, iterations=1,
    )
