"""Experiment E1 + E2: regenerate Figure 7 (the user-study table) and the
Welch t-tests.

Paper numbers (Figure 7, averages row):
    manual:     32.9 % correct / 51.1 % wrong / 16.0 % ? / 293 s
    technique:  89.6 % correct /  7.3 % wrong /  2.3 % ? /  55 s
    t-tests:    accuracy p = 5e-8, time p = 1.2e-28

The regenerated table is printed; the assertions pin the qualitative
findings (who wins, by roughly what factor).  Run with ``-s`` to see the
full table.
"""

from __future__ import annotations

import pytest

from repro.diagnosis import EngineConfig
from repro.userstudy import (
    accuracy_ttest,
    format_figure7,
    run_user_study,
    summarize,
    time_ttest,
)


@pytest.fixture(scope="module")
def study():
    return run_user_study(
        seed=2012,
        num_recruited=56,
        engine_config=EngineConfig(max_rounds=8),
    )


def test_figure7_userstudy(benchmark, study):
    """Regenerates and prints the Figure 7 table (timing the aggregation;
    the simulation itself runs once in the fixture)."""
    table = benchmark(format_figure7, study)
    print()
    print(table)

    summary = summarize(study)
    manual = summary["manual"]
    technique = summary["technique"]

    # the paper's headline: accuracy ~33% -> ~90%
    assert 20.0 <= manual["pct_correct"] <= 45.0
    assert technique["pct_correct"] >= 80.0
    assert technique["pct_correct"] - manual["pct_correct"] >= 40.0

    # wrong answers collapse (51% -> 7%)
    assert manual["pct_wrong"] >= 40.0
    assert technique["pct_wrong"] <= 15.0

    # times: ~5 minutes -> about a minute
    assert 200.0 <= manual["avg_seconds"] <= 400.0
    assert technique["avg_seconds"] <= 90.0
    assert manual["avg_seconds"] / technique["avg_seconds"] >= 3.0


def test_ttests_significant(study):
    """E2: both effects must be wildly significant (paper: 5e-8, 1.2e-28).

    The simulated cohort has lower variance than 49 humans, so the exact
    p-values come out even smaller; the reproduced claim is the
    significance ordering, not the magnitude."""
    acc = accuracy_ttest(study)
    tim = time_ttest(study)
    assert acc.p_value < 5e-8
    assert tim.p_value < 1.2e-28


def test_participant_pool_matches_paper(study):
    """56 recruited; the paper ended with 49 valid after screening."""
    valid = len(study.participants)
    assert 44 <= valid <= 54
    assert valid + study.excluded == 56
