"""Microbenchmarks of the decision-procedure stack (substrate health).

Not a paper experiment — these keep the from-scratch solver layers
honest: SAT on a pigeonhole family and a blocking-clause enumeration,
the Omega test on structured systems, Cooper QE on alternating
quantifiers, and a representative SMT entailment from the diagnosis
workload.

Runs under pytest (per-workload pytest-benchmark stats) or standalone
for CI::

    PYTHONPATH=src python benchmarks/bench_solver_stack.py

Standalone mode times every workload *cold* (QE caches dropped between
repetitions), normalizes by a pure-Python calibration loop so the bound
is machine-independent, fails (exit 1) when any workload exceeds its
pinned budget, and appends the timings to the ``BENCH_obs.json`` run
history so the trajectory across commits is visible.
"""

from __future__ import annotations

import sys
import time

from repro.lia import OmegaSolver
from repro.logic import (
    LinTerm,
    Var,
    conj,
    dvd,
    exists,
    forall,
    ge,
    le,
    lt,
    parse_formula,
)
from repro.qe import decide_closed
from repro.sat import SatSolver
from repro.smt import SmtSolver

x, y, z, w = Var("x"), Var("y"), Var("z"), Var("w")


def pigeonhole_unsat(holes: int) -> bool:
    pigeons = holes + 1
    solver = SatSolver()
    solver.ensure_vars(pigeons * holes)
    var = lambda p, h: p * holes + h + 1
    for p in range(pigeons):
        solver.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var(p1, h), -var(p2, h)])
    return solver.solve()


def test_sat_pigeonhole(benchmark):
    result = benchmark(pigeonhole_unsat, 5)
    assert result is False


def enumeration_workload(groups: int = 12, size: int = 4,
                         cap: int = 400) -> int:
    """Blocking-clause model enumeration over one-hot groups: the
    learned-clause database grows by one blocking clause per model, so
    this drives the watched-literal and DB-reduction machinery hard."""
    solver = SatSolver()
    n = groups * size
    solver.ensure_vars(n)
    var = lambda g, i: g * size + i + 1
    for g in range(groups):
        solver.add_clause([var(g, i) for i in range(size)])
        for i in range(size):
            for j in range(i + 1, size):
                solver.add_clause([-var(g, i), -var(g, j)])
    count = 0
    while count < cap and solver.solve():
        model = solver.model()
        count += 1
        solver.add_clause(
            [-v if model[v] else v for v in range(1, n + 1)]
        )
    return count


def test_sat_enumeration(benchmark):
    assert benchmark(enumeration_workload) == 400


def omega_workload() -> bool:
    solver = OmegaSolver()
    lits = [
        ge(LinTerm.make([(x, 3), (y, -2)]), 1),
        le(LinTerm.make([(x, 3), (y, -2)]), 5),
        ge(LinTerm.make([(y, 7), (z, 2)]), 10),
        le(LinTerm.var(z), 50),
        ge(LinTerm.var(z), -50),
        dvd(4, LinTerm.var(x) + LinTerm.var(y)),
    ]
    return solver.solve_literals(lits) is not None


def test_omega_structured_system(benchmark):
    assert benchmark(omega_workload)


def omega_chain_workload() -> bool:
    """A six-variable coupled chain: every elimination step produces a
    real Fourier–Motzkin batch, so this is the workload the arithmetic
    backend (numpy vs python rows) actually moves."""
    vs = [Var(f"v{i}") for i in range(6)]
    lits = []
    for a, b in zip(vs, vs[1:]):
        lits.append(le(LinTerm.make([(a, 2), (b, -3)]), 4))
        lits.append(ge(LinTerm.make([(a, 1), (b, 1)]), -6))
    for v in vs:
        lits.append(le(LinTerm.var(v), 30))
        lits.append(ge(LinTerm.var(v), -30))
    return OmegaSolver().solve_literals(lits) is not None


def test_omega_chain(benchmark):
    assert benchmark(omega_chain_workload)


def cooper_workload() -> bool:
    # forall x exists y. 2y <= x < 2y + 2  (floor division exists)
    phi = forall([x], exists([y], conj(
        le(LinTerm.var(y, 2), LinTerm.var(x)),
        lt(LinTerm.var(x), LinTerm.var(y, 2) + 2),
    )))
    return decide_closed(phi)


def test_cooper_alternation(benchmark):
    assert benchmark(cooper_workload)


def cooper_deep_workload() -> bool:
    """Four alternation levels: forall x exists y forall z exists w,
    with one floor-division witness per existential block.  Cooper
    elimination has to chew through every level, so this is the
    heaviest pure-QE workload in the suite."""
    phi = forall([x], exists([y], conj(
        le(LinTerm.var(y, 2), LinTerm.var(x)),
        lt(LinTerm.var(x), LinTerm.var(y, 2) + 2),
        forall([z], exists([w], conj(
            le(LinTerm.var(w, 3), LinTerm.var(x) + LinTerm.var(z)),
            lt(LinTerm.var(x) + LinTerm.var(z), LinTerm.var(w, 3) + 3),
        ))),
    )))
    return decide_closed(phi)


def test_cooper_deep(benchmark):
    assert benchmark(cooper_deep_workload)


def smt_entailment_workload() -> bool:
    solver = SmtSolver()
    inv = parse_formula(
        "ann >= 0 && ai >= 0 && ai > n && n >= 0 && aj >= n"
    )
    phi = parse_formula(
        "(1 + ai + aj > 2*n && flag == 0) ||"
        " (ann + ai + aj > 2*n && flag != 0)"
    )
    return solver.entails(inv, phi)


def test_smt_entailment(benchmark):
    assert benchmark(smt_entailment_workload)


# ---------------------------------------------------------------------------
# standalone mode: pinned budgets + run-history append (CI)
# ---------------------------------------------------------------------------

WORKLOADS = {
    "sat_pigeonhole": lambda: pigeonhole_unsat(5) is False,
    "sat_enumeration": lambda: enumeration_workload() == 400,
    "omega_structured": omega_workload,
    "omega_chain": omega_chain_workload,
    "cooper_alternation": cooper_workload,
    "cooper_deep": cooper_deep_workload,
    "smt_entailment": smt_entailment_workload,
}

#: Pinned cold-time budgets, in *calibration units* (workload seconds
#: divided by the pure-Python calibration loop's seconds), so the bound
#: tracks machine speed instead of wall clock.  Each is ~3x the value
#: measured after the solver-core rewrite — tight enough that a return
#: to the pre-rewrite times (2-3x slower on the omega/cooper/smt
#: workloads) fails the gate, loose enough to absorb runner noise.
BUDGET_UNITS = {
    "sat_pigeonhole": 0.7,
    "sat_enumeration": 8.0,
    "omega_structured": 0.03,
    "omega_chain": 0.06,
    "cooper_alternation": 0.05,
    "cooper_deep": 0.10,
    "smt_entailment": 0.15,
}

REPEATS = 3


def _calibration_s() -> float:
    """Seconds for a fixed pure-Python arithmetic loop (machine speed)."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        acc = 0
        for i in range(1_000_000):
            acc += i * i % 7
        best = min(best, time.perf_counter() - start)
    assert acc >= 0
    return best


def measure(repeats: int = REPEATS) -> tuple[float, dict[str, float]]:
    """Best-of-N *cold* seconds per workload: both the QE caches and
    the hash-consing tables (with their per-node digest memos) are
    dropped before every repetition, so each run pays the full
    build-normalize-solve cost exactly like a fresh process."""
    from repro.logic.intern import clear_intern_tables
    from repro.qe.cooper import clear_qe_caches

    timings: dict[str, float] = {}
    for name, fn in WORKLOADS.items():
        best = float("inf")
        for _ in range(repeats):
            clear_qe_caches()
            clear_intern_tables()
            start = time.perf_counter()
            ok = fn()
            elapsed = time.perf_counter() - start
            if not ok:
                raise AssertionError(f"workload {name} returned a wrong "
                                     f"result")
            best = min(best, elapsed)
        timings[name] = best
    return _calibration_s(), timings


def main(argv: list[str]) -> int:
    history_path = argv[1] if len(argv) > 1 else "BENCH_obs.json"
    cal, timings = measure()
    print(f"calibration loop: {cal * 1e3:.1f} ms")
    print(f"{'workload':20s} {'cold_ms':>9s} {'units':>7s} "
          f"{'budget':>7s}")
    failures = []
    units: dict[str, float] = {}
    for name, seconds in timings.items():
        units[name] = seconds / cal
        budget = BUDGET_UNITS[name]
        verdict = "ok" if units[name] <= budget else "OVER"
        print(f"{name:20s} {seconds * 1e3:9.2f} {units[name]:7.2f} "
              f"{budget:7.2f}  {verdict}")
        if units[name] > budget:
            failures.append(name)
    from repro.obs import history

    history.append_run(
        history_path, None, label="solver-stack",
        meta={
            "calibration_s": cal,
            "timings_ms": {k: v * 1e3 for k, v in timings.items()},
            "units": {k: round(v, 3) for k, v in units.items()},
            "budget_units": BUDGET_UNITS,
        },
    )
    print(f"appended solver-stack run to {history_path}")
    if failures:
        print(f"FAIL: over budget: {', '.join(failures)}")
        return 1
    print("all workloads within pinned budgets")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
