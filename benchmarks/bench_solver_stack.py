"""Microbenchmarks of the decision-procedure stack (substrate health).

Not a paper experiment — these keep the from-scratch solver layers
honest: SAT on a pigeonhole family, the Omega test on structured
systems, Cooper QE on alternating quantifiers, and a representative SMT
entailment from the diagnosis workload.
"""

from __future__ import annotations

import pytest

from repro.lia import OmegaSolver
from repro.logic import (
    LinTerm,
    Var,
    conj,
    dvd,
    exists,
    forall,
    ge,
    le,
    lt,
    parse_formula,
)
from repro.qe import decide_closed
from repro.sat import SatSolver
from repro.smt import SmtSolver

x, y, z = Var("x"), Var("y"), Var("z")


def pigeonhole_unsat(holes: int) -> bool:
    pigeons = holes + 1
    solver = SatSolver()
    solver.ensure_vars(pigeons * holes)
    var = lambda p, h: p * holes + h + 1
    for p in range(pigeons):
        solver.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var(p1, h), -var(p2, h)])
    return solver.solve()


def test_sat_pigeonhole(benchmark):
    result = benchmark(pigeonhole_unsat, 5)
    assert result is False


def omega_workload() -> bool:
    solver = OmegaSolver()
    lits = [
        ge(LinTerm.make([(x, 3), (y, -2)]), 1),
        le(LinTerm.make([(x, 3), (y, -2)]), 5),
        ge(LinTerm.make([(y, 7), (z, 2)]), 10),
        le(LinTerm.var(z), 50),
        ge(LinTerm.var(z), -50),
        dvd(4, LinTerm.var(x) + LinTerm.var(y)),
    ]
    return solver.solve_literals(lits) is not None


def test_omega_structured_system(benchmark):
    assert benchmark(omega_workload)


def cooper_workload() -> bool:
    # forall x exists y. 2y <= x < 2y + 2  (floor division exists)
    phi = forall([x], exists([y], conj(
        le(LinTerm.var(y, 2), LinTerm.var(x)),
        lt(LinTerm.var(x), LinTerm.var(y, 2) + 2),
    )))
    return decide_closed(phi)


def test_cooper_alternation(benchmark):
    assert benchmark(cooper_workload)


def smt_entailment_workload() -> bool:
    solver = SmtSolver()
    inv = parse_formula(
        "ann >= 0 && ai >= 0 && ai > n && n >= 0 && aj >= n"
    )
    phi = parse_formula(
        "(1 + ai + aj > 2*n && flag == 0) ||"
        " (ann + ai + aj > 2*n && flag != 0)"
    )
    return solver.entails(inv, phi)


def test_smt_entailment(benchmark):
    assert benchmark(smt_entailment_workload)
