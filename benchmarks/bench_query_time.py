"""Experiment E3: query-computation time.

Paper (Section 6): "The time for query computation is negligible; in all
cases, the computation time is below 0.1s."

The paper's Mistral solver is C++; this reproduction's entire logic
stack is pure Python, so absolute times are expected to be one to two
orders of magnitude larger.  The benchmark records the per-problem time
to compute one full abduction round (weakest minimum proof obligation
*and* failure witness) so the shape — "interactive, not batch" — can be
judged.
"""

from __future__ import annotations

import pytest

from repro.diagnosis import Abducer, pi_p, pi_w
from repro.suite import BENCHMARKS


def one_round(analysis):
    abducer = Abducer()
    inv, phi = analysis.invariants, analysis.success
    gamma = abducer.proof_obligation(inv, phi, pi_p(inv, phi))
    upsilon = abducer.failure_witness(inv, phi, pi_w(inv, phi))
    return gamma, upsilon


@pytest.mark.parametrize("name", [b.name for b in BENCHMARKS])
def test_query_computation_time(benchmark, suite_artifacts, name):
    bench, _program, analysis = suite_artifacts[name]
    gamma, upsilon = benchmark.pedantic(
        one_round, args=(analysis,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    # an abduction must actually be produced on every benchmark
    assert gamma is not None or upsilon is not None
    # interactive-scale bound for the pure-Python stack (paper: 0.1 s
    # with a C++ solver).  Hash-consed formulas + persistent QE caches
    # brought the worst per-problem mean under 0.4 s; 3 s leaves slack
    # for slow CI machines while still pinning the >=10x improvement
    # over the original 30 s tolerance.
    assert benchmark.stats.stats.mean < 3.0
