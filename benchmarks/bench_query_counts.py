"""Experiment E4: queries per benchmark.

Paper (Section 6): participants answered "a series of questions ...
ranging from one to three questions on these benchmarks", and the
initial analysis reports a potential (not certain) error on all eleven.

With the ground-truth oracle the engine must resolve every problem to
its Figure 7 classification within that band.
"""

from __future__ import annotations

import pytest

from repro.diagnosis import diagnose_error
from repro.suite import BENCHMARKS


@pytest.mark.parametrize("name", [b.name for b in BENCHMARKS])
def test_query_count(benchmark, suite_artifacts, suite_oracles, name):
    bench, _program, analysis = suite_artifacts[name]
    oracle = suite_oracles[name]

    result = benchmark.pedantic(
        diagnose_error, args=(analysis, oracle), rounds=1, iterations=1,
    )
    assert result.classification == bench.classification
    assert 1 <= result.num_queries <= 3, (
        f"{name}: {result.num_queries} queries (paper band is 1-3)"
    )


def test_total_queries_across_suite(suite_artifacts, suite_oracles):
    """Aggregate: print the per-problem counts as a table row."""
    counts = {}
    for name, (bench, _program, analysis) in suite_artifacts.items():
        result = diagnose_error(analysis, suite_oracles[name])
        counts[name] = result.num_queries
    print()
    print("queries per problem:",
          " ".join(f"{k.split('_')[0]}={v}" for k, v in counts.items()))
    assert all(1 <= c <= 3 for c in counts.values())
