"""Ablation A4: MSA search strategy (branch-and-bound vs cost-ordered
subset enumeration).

Both strategies are exact; they must return assignments of identical
cost.  Branch-and-bound prunes with the QE-backed viability check and is
the default.
"""

from __future__ import annotations

import pytest

from repro.diagnosis.abduction import _relevant_variables
from repro.logic import implies
from repro.diagnosis import pi_p
from repro.msa import MsaSolver
from repro.suite import BENCHMARKS


def run_msa(analysis, strategy):
    inv, phi = analysis.invariants, analysis.success
    goal = implies(inv, phi)
    costs = pi_p(inv, phi)
    solver = MsaSolver()
    relevant = _relevant_variables(goal, phi.free_vars())
    return solver.find(goal, costs, consistency=[inv],
                       strategy=strategy, restrict=relevant)


def test_strategies_agree_on_cost(suite_artifacts):
    print()
    for name, (_bench, _program, analysis) in suite_artifacts.items():
        bb = run_msa(analysis, "branch_bound")
        subsets = run_msa(analysis, "subsets")
        if bb is None or subsets is None:
            assert bb is None and subsets is None
            continue
        print(f"  {name:16s} cost={bb.cost} "
              f"(bb vars={sorted(v.name for v in bb.variables)})")
        assert bb.cost == subsets.cost


@pytest.mark.parametrize("strategy", ["branch_bound", "subsets"])
def test_msa_strategy_speed(benchmark, suite_artifacts, strategy):
    _bench, _program, analysis = suite_artifacts["p02_wordcount"]
    result = benchmark.pedantic(
        run_msa, args=(analysis, strategy), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert result is not None
