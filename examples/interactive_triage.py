"""Interactive triage session: you are the oracle.

Run:  python examples/interactive_triage.py [--auto]

Presents a real-bug program (an off-by-one in a fill loop).  The engine
asks you yes/no/unknown questions until the report is classified.  With
``--auto`` (or when stdin is not a terminal) the questions are answered
by the random-testing oracle instead — the paper's Section 8 idea of
discharging witness queries dynamically.
"""

import sys

from repro.api import Pipeline
from repro.diagnosis import (
    EngineConfig,
    InteractiveOracle,
    SamplingOracle,
    diagnose_error,
)

SOURCE = """
program ring_fill(unsigned capacity, unsigned stride) {
  var i = 0;
  var written = 0;
  var cursor = 0;
  var step = 1;
  if (stride > 0) { step = stride; }
  // BUG: <= writes one element past the end
  while (i <= capacity) {
    i = i + 1;
    written = written + 1;
    cursor = cursor + step;
  } @post(written >= 0 && cursor >= 0)
  assert(written <= capacity);
}
"""


def main() -> None:
    auto = "--auto" in sys.argv or not sys.stdin.isatty()
    outcome = Pipeline().analyze(SOURCE)
    print("analysis verdict:", outcome.verdict.value)
    print()
    if auto:
        print("(answering queries by random testing — pass no --auto and "
              "run in a terminal to answer yourself)")
        oracle = SamplingOracle(outcome.program, outcome.analysis,
                                samples=400)
    else:
        print("answer each question with yes / no / unknown")
        oracle = InteractiveOracle()
    result = diagnose_error(outcome.analysis, oracle,
                            EngineConfig(max_rounds=10))
    print()
    print(f"classification: {result.classification.upper()} "
          f"after {result.num_queries} queries")
    if result.witnesses:
        print("learned witnesses:")
        for witness in result.witnesses:
            print(f"  - {witness}")


if __name__ == "__main__":
    main()
