"""The paper's marquee anecdote: Problem 6, modeled on coreutils chroot.

Run:  python examples/coreutils_chroot.py

Section 6: "the value of variable optind is correlated with four
different return values of function getopt_long ... an author of this
submission spent approximately half an hour to decide that the report is
indeed a false alarm.  In contrast ... the user only needs to answer one
simple query asking whether the value of optind is always greater than
zero after a while loop."

This script loads the benchmark, shows that the analysis is stuck, and
resolves the report (a) with a simulated programmer and (b) fully
automatically with the exhaustive ground-truth oracle.
"""

from repro.api import ground_truth_oracle, load_benchmark
from repro.diagnosis import ScriptedOracle, diagnose_error
from repro.logic import neg
from repro.smt import SmtSolver


def main() -> None:
    bench, program, analysis = load_benchmark("p06_chroot")
    print(f"benchmark: {bench.name}  (paper problem {bench.problem_id}, "
          f"{bench.kind}, truth: {bench.classification})")
    print(f"cause of the report: {bench.cause}")
    print()

    solver = SmtSolver()
    print("can the analysis settle it alone?")
    print(f"  I |= phi  : {solver.entails(analysis.invariants, analysis.success)}")
    print(f"  I |= !phi : "
          f"{solver.entails(analysis.invariants, neg(analysis.success))}")
    print()

    print("--- with a programmer answering (scripted 'yes') ---")
    result = diagnose_error(analysis, ScriptedOracle(["yes"]))
    for interaction in result.interactions:
        print("tool asks:")
        print("   " + interaction.query.render().replace("\n", "\n   "))
        print(f"answer: {interaction.answer.value}")
    print(f"=> {result.classification.upper()}")
    print()

    print("--- with the exhaustive ground-truth oracle ---")
    analysis2, oracle = ground_truth_oracle("p06_chroot")
    result2 = diagnose_error(analysis2, oracle)
    print(f"=> {result2.classification.upper()} "
          f"after {result2.num_queries} query/queries")


if __name__ == "__main__":
    main()
