"""Quickstart: the paper's Section 1.1 running example, end to end.

Run:  python examples/quickstart.py

The program `foo` is correct, but a static analysis that loses precision
at the loop and at the non-linear product n*n cannot prove it.  The
pipeline:

1. parse the program (its loop carries the paper's @post annotation);
2. run the Section 3 symbolic analysis to get invariants I and the
   success condition phi;
3. since neither I |= phi nor I |= !phi, compute weakest minimum proof
   obligations / failure witnesses by abduction and ask the user;
4. one "yes" discharges the report: it was a false alarm.
"""

from repro import Pipeline, ScriptedOracle

SOURCE = """
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) {
    i = i + 1;
    j = j + i;
  } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
"""


def main() -> None:
    pipeline = Pipeline()
    print("=== the analysis judgment (Section 3) ===")
    outcome = pipeline.analyze(SOURCE)
    print(f"I   = {outcome.invariants}")
    print(f"phi = {outcome.success}")
    print(f"initial verdict: {outcome.verdict.value}")
    print()

    print("=== query-guided diagnosis (Section 4) ===")
    # a real session would use InteractiveOracle(); here we script the
    # answer a programmer would give after a glance at the loop
    oracle = ScriptedOracle(["yes"])
    result = pipeline.diagnose(SOURCE, oracle)

    for interaction in result.interactions:
        print("tool asks:")
        print("   " + interaction.query.render().replace("\n", "\n   "))
        print(f"user answers: {interaction.answer.value}")
    print()
    print(f"verdict: the report is a {result.classification.upper()} "
          f"({result.num_queries} query, "
          f"{result.elapsed_seconds:.2f}s of tool time)")


if __name__ == "__main__":
    main()
