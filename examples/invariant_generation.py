"""The invariant-generation substrate: interval and zone domains.

Run:  python examples/invariant_generation.py

The paper assumes loop postconditions "obtained from any automatic sound
static analysis technique".  This example shows the two built-in
abstract interpreters inferring @post annotations — including the
relational fact i > n the paper's running example relies on — and how
annotation strength changes what the diagnosis engine must ask.
"""

from repro.abstract import annotate_program, infer_loop_posts
from repro.analysis import analyze_program
from repro.diagnosis import ExhaustiveOracle, diagnose_error
from repro.lang import parse_program

SOURCE = """
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) {
    i = i + 1;
    j = j + i;
  }
  var z = k + i + j;
  assert(z > 2 * n);
}
"""


def main() -> None:
    program = parse_program(SOURCE)

    for domains in (("interval",), ("zone",), ("octagon",),
                    ("interval", "zone", "octagon")):
        posts = infer_loop_posts(program, domains)
        print(f"domains {'+'.join(domains)}:")
        for label, facts in sorted(posts.items()):
            rendered = " && ".join(str(f) for f in facts) or "(nothing)"
            print(f"  loop {label}: {rendered}")
    print()

    annotated = annotate_program(program)
    print("annotated loop post:", annotated.loops()[0].post)
    print()

    analysis = analyze_program(annotated)
    oracle = ExhaustiveOracle(annotated, analysis, radius=5)
    result = diagnose_error(analysis, oracle)
    print(f"diagnosis with auto-inferred invariants: "
          f"{result.classification} after {result.num_queries} queries")
    for interaction in result.interactions:
        print(f"  Q: {interaction.query.text}")
        print(f"  A: {interaction.answer.value}")


if __name__ == "__main__":
    main()
