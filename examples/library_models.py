"""Procedures, library models, and the bounded static oracle together.

Run:  python examples/library_models.py

A small "application" slice: a helper procedure (inlined before
analysis, like the paper's interprocedural Compass frontend), a library
call modeled by havoc with a partial @assume contract, and diagnosis
where a *static underapproximation* (bounded unrolling, Section 8's
future-work idea) answers part of the interaction before a human is
consulted.
"""

from repro.api import Pipeline
from repro.bmc import UnrollingOracle
from repro.diagnosis import (
    ChainOracle,
    EngineConfig,
    ScriptedOracle,
    diagnose_error,
)

SOURCE = """
proc clamp(lo, hi, v) {
  var r;
  r = v;
  if (r < lo) { r = lo; }
  if (r > hi) { r = hi; }
  return r;
}

program retry_budget(unsigned max_tries) {
  var tries = 0;
  var status = 0;
  var done = 0;
  var budget = 0;
  budget = call clamp(1, 4, max_tries);
  while (done == 0) {
    if (tries >= budget) {
      done = 1;
    } else {
      // connect() returns 0 on success, -1 on failure
      havoc status @assume(status >= -1 && status <= 0);
      tries = tries + 1;
      if (status == 0) { done = 1; }
    }
  } @post(tries >= 0 && done == 1)
  assert(tries <= 4);
}
"""


def main() -> None:
    outcome = Pipeline().analyze(SOURCE)
    print("program (after inlining):", outcome.program.name)
    print("locals:", ", ".join(outcome.program.locals))
    print("initial verdict:", outcome.verdict.value)
    print()

    # chain: bounded static oracle first, then a (scripted) human
    bounded = UnrollingOracle(outcome.program, outcome.analysis, bound=5)
    human = ScriptedOracle(["yes", "yes", "yes"])
    oracle = ChainOracle([bounded, human])

    result = diagnose_error(outcome.analysis, oracle,
                            EngineConfig(max_rounds=10))
    for interaction in result.interactions:
        print(f"Q ({interaction.query.kind}): {interaction.query.text}")
        print(f"A: {interaction.answer.value}")
    print()
    print(f"classification: {result.classification.upper()} "
          f"({result.num_queries} queries)")


if __name__ == "__main__":
    main()
