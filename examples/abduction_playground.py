"""Direct use of the logic stack: abduction on raw formulas.

Run:  python examples/abduction_playground.py

Shows the pieces below the program analysis — the SMT solver, Cooper
quantifier elimination, minimum satisfying assignments, and weakest
minimum abduction — on the paper's Example 1/2 formulas.  Useful as a
template for using `repro` as a general abductive-inference library.
"""

from repro.logic import VarKind, conj, neg, parse_formula
from repro.msa import find_msa
from repro.qe import eliminate_forall
from repro.simplify import simplify
from repro.smt import SmtSolver

KINDS = {
    "ai": VarKind.ABSTRACTION, "aj": VarKind.ABSTRACTION,
    "n1": VarKind.INPUT, "n2": VarKind.INPUT,
}

# Example 1's analysis output: invariants I and success condition phi
I = parse_formula("ai >= 0 && ai > n2", KINDS)
PHI = parse_formula(
    "(n2 + ai + aj > 2*n2 && n2 > 0 && n1 > 0) ||"
    " (1 + ai + aj > 2*n2 && n2 <= 0 && n1 > 0) ||"
    " (2*n2 + 1 > 2*n2 && n1 <= 0)",
    KINDS,
)


def main() -> None:
    solver = SmtSolver()
    print("I   =", I)
    print("phi =", PHI)
    print()
    print("I |= phi  ?", solver.entails(I, PHI))
    print("I |= !phi ?", solver.entails(I, neg(PHI)))
    print()

    # Definition 2's cost map: abstraction vars cost 1, inputs cost |Vars|
    goal = I.implies(PHI)
    nvars = len(goal.free_vars())
    costs = {
        v: (1 if v.kind is VarKind.ABSTRACTION else nvars)
        for v in goal.free_vars()
    }

    msa = find_msa(goal, costs, consistency=[I])
    assert msa is not None
    print("minimum satisfying assignment:",
          {str(v): c for v, c in msa.assignment}, f"(cost {msa.cost})")

    keep = msa.variables
    eliminate = [v for v in goal.free_vars() if v not in keep]
    gamma_raw = eliminate_forall(eliminate, goal)
    gamma = simplify(gamma_raw, critical=I)
    print("weakest minimum proof obligation:", gamma)
    print()

    print("checks (Definition 1):")
    print("  SAT(gamma && I)      :", solver.is_sat(conj(gamma, I)))
    print("  gamma && I |= phi    :", solver.entails(conj(gamma, I), PHI))


if __name__ == "__main__":
    main()
